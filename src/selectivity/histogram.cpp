#include "selectivity/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "memory/fast_state.hpp"
#include "numerics/simd.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

EquiWidthHistogram::EquiWidthHistogram(double lo, double hi, int buckets) : lo_(lo) {
  WDE_CHECK_LT(lo, hi);
  WDE_CHECK_GT(buckets, 0);
  width_ = (hi - lo) / static_cast<double>(buckets);
  buckets_ = static_cast<size_t>(buckets);
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, buckets_},
                                      {memory::ColumnKind::kF64, buckets_}};
  bins_ = memory::Arena::Create(specs);
}

RangeQuery EquiWidthHistogram::Domain() const {
  return RangeQuery{lo_, lo_ + width_ * static_cast<double>(buckets_)};
}

void EquiWidthHistogram::Insert(double x) {
  if (!std::isfinite(x)) return;
  const double hi = lo_ + width_ * static_cast<double>(buckets_);
  x = std::clamp(x, lo_, hi);
  auto bucket = static_cast<long>((x - lo_) / width_);
  bucket = std::clamp(bucket, 0L, static_cast<long>(buckets_) - 1);
  bins_.MutableF64(0)[static_cast<size_t>(bucket)] += 1.0;
  ++count_;
}

void EquiWidthHistogram::RebuildPrefixIfStale() const {
  if (prefix_valid_ && prefix_built_at_count_ == count_) return;
  // Un-share first (MutableF64 may relocate the arena), then read the counts
  // span from the post-relocation storage.
  std::span<double> prefix = bins_.MutableF64(1);
  std::span<const double> counts = bins_.F64(0);
  // Blocked scan: bucket counts are integer-valued doubles (exact up to
  // 2^53), so the blocked association is bit-identical to the sequential
  // chain while breaking its per-element latency dependency.
  numerics::PrefixSumExclusiveBlocked(counts, prefix);
  prefix_valid_ = true;
  prefix_built_at_count_ = count_;
}

double EquiWidthHistogram::CdfAt(double x) const {
  const double hi = lo_ + width_ * static_cast<double>(buckets_);
  x = std::clamp(x, lo_, hi);
  const double t = (x - lo_) / width_;
  const auto bucket = std::clamp(static_cast<long>(t), 0L,
                                 static_cast<long>(buckets_) - 1);
  const double frac = t - static_cast<double>(bucket);
  return (bins_.F64(1)[static_cast<size_t>(bucket)] +
          bins_.F64(0)[static_cast<size_t>(bucket)] * frac) /
         static_cast<double>(count_);
}

double EquiWidthHistogram::EstimateRangeImpl(double a, double b) const {
  if (count_ == 0) return 0.0;
  RebuildPrefixIfStale();
  return CdfAt(b) - CdfAt(a);
}

void EquiWidthHistogram::AnswerImpl(std::span<const Query> queries,
                                    std::span<double> out) const {
  if (count_ == 0) {
    // Empty histogram: every mass kind answers 0.0 through the lowering and
    // quantiles answer 0.0 by the interface rule; the canonical loop does
    // both without touching the prefix table.
    for (size_t i = 0; i < queries.size(); ++i) out[i] = AnswerOne(queries[i]);
    return;
  }
  RebuildPrefixIfStale();
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    switch (q.kind) {
      case QueryKind::kLess:
      case QueryKind::kCdf:
        // One prefix lookup. Bit-identical to the lowering
        // CdfAt(x) - CdfAt(-inf): the -inf endpoint clamps to the lower
        // domain edge where the prefix mass and fraction are exactly zero.
        out[i] = CdfAt(q.a);
        break;
      default:
        out[i] = AnswerOne(q);
        break;
    }
  }
}

std::string EquiWidthHistogram::name() const {
  return Format("equi-width(%d)", buckets());
}

std::unique_ptr<SelectivityEstimator> EquiWidthHistogram::CloneEmpty() const {
  // Copy-then-reset keeps lo_/width_ bitwise identical to this instance
  // (re-deriving hi from lo + width * buckets could round differently and
  // make the clone spuriously merge-incompatible).
  auto clone = std::make_unique<EquiWidthHistogram>(*this);
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, buckets_},
                                      {memory::ColumnKind::kF64, buckets_}};
  clone->bins_ = memory::Arena::Create(specs);
  clone->count_ = 0;
  clone->prefix_valid_ = false;
  clone->prefix_built_at_count_ = 0;
  return clone;
}

Status EquiWidthHistogram::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const EquiWidthHistogram&>(other);
  if (lo_ != rhs.lo_ || width_ != rhs.width_ || buckets_ != rhs.buckets_) {
    return Status::FailedPrecondition("MergeFrom: " + name() +
                                      " domain/bucket mismatch with " +
                                      rhs.name());
  }
  // Bulk element-wise fold over the contiguous, 64-byte-aligned count
  // columns; un-share before taking the raw pointers.
  double* dst = bins_.MutableF64(0).data();
  const double* src = rhs.bins_.F64(0).data();
  const size_t n = buckets_;
  WDE_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
  count_ += rhs.count_;
  prefix_valid_ = false;  // stale; rebuilt at the next query
  prefix_built_at_count_ = 0;
  return Status::OK();
}

Status EquiWidthHistogram::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, width_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, count_));
  return io::WriteDoubleVector(sink, bins_.F64(0));
}

Status EquiWidthHistogram::LoadStateImpl(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const double lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double width, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> counts, io::ReadDoubleVector(source));
  if (!std::isfinite(lo) || !std::isfinite(width) || !(width > 0.0) ||
      counts.empty() || counts.size() > (1u << 26) || source.remaining() != 0) {
    return Status::InvalidArgument("corrupt equi-width snapshot");
  }
  lo_ = lo;
  width_ = width;
  count_ = static_cast<size_t>(count);
  buckets_ = counts.size();
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, buckets_},
                                      {memory::ColumnKind::kF64, buckets_}};
  bins_ = memory::Arena::Create(specs);
  std::copy(counts.begin(), counts.end(), bins_.MutableF64(0).begin());
  // The prefix table is derived state: rebuilding from identical counts at
  // the first query reproduces identical answers.
  prefix_valid_ = false;
  prefix_built_at_count_ = 0;
  return Status::OK();
}

Status EquiWidthHistogram::SaveFastStateImpl(memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), width_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), buckets_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), count_));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), prefix_valid_ ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), prefix_built_at_count_));
  // Both columns travel verbatim: the counts are the data, the prefix table
  // is the derived cache (always defined bytes — Create zero-fills) that
  // spares the restored histogram its first rebuild pass.
  writer.AddF64(bins_.F64(0));
  writer.AddF64(bins_.F64(1));
  return Status::OK();
}

Status EquiWidthHistogram::LoadFastStateImpl(memory::FastStateReader& reader) {
  WDE_ASSIGN_OR_RETURN(const double lo, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double width, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t buckets, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t prefix_valid, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t prefix_built_at, io::ReadU64(reader.head()));
  const memory::ColumnSpec expected[] = {
      {memory::ColumnKind::kF64, static_cast<size_t>(buckets)},
      {memory::ColumnKind::kF64, static_cast<size_t>(buckets)}};
  if (!std::isfinite(lo) || !std::isfinite(width) || !(width > 0.0) ||
      buckets == 0 || buckets > (1u << 26) || prefix_valid > 1 ||
      (prefix_valid != 0 && prefix_built_at > count) ||
      !memory::ColumnsMatch(reader.arena(), expected) ||
      reader.head().remaining() != 0) {
    return Status::InvalidArgument("corrupt equi-width fast state");
  }
  lo_ = lo;
  width_ = width;
  buckets_ = static_cast<size_t>(buckets);
  count_ = static_cast<size_t>(count);
  // Adopt the parsed arena wholesale — borrowed zero-copy from an mmapped
  // image, in which case the first insert (not load) pays the un-share copy.
  bins_ = std::move(reader.arena());
  prefix_valid_ = prefix_valid != 0;
  prefix_built_at_count_ = static_cast<size_t>(prefix_built_at);
  return Status::OK();
}

EquiDepthHistogram::EquiDepthHistogram(double lo, double hi, int buckets,
                                       RefitMode refit_mode)
    : lo_(lo), hi_(hi), buckets_(buckets), refit_mode_(refit_mode) {
  WDE_CHECK_LT(lo, hi);
  WDE_CHECK_GT(buckets, 0);
}

void EquiDepthHistogram::Insert(double x) {
  if (!std::isfinite(x)) return;
  values_.push_back(std::clamp(x, lo_, hi_));
}

void EquiDepthHistogram::RebuildIfStale() const {
  if (!boundaries_.empty() && built_at_count_ == values_.size()) return;
  if (refit_mode_ == RefitMode::kIncremental) {
    // Extend the sorted shadow by the appended delta only: sort the tail,
    // one stable merge — O(Δ log Δ + n) against the scratch path's full
    // O(n log n) sort, identical sorted sequence.
    const size_t prev = sorted_.size();
    sorted_.insert(sorted_.end(), values_.begin() + static_cast<ptrdiff_t>(prev),
                   values_.end());
    const auto mid = sorted_.begin() + static_cast<ptrdiff_t>(prev);
    std::sort(mid, sorted_.end());
    std::inplace_merge(sorted_.begin(), mid, sorted_.end());
    BuildBoundariesFromSorted(sorted_);
  } else {
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    BuildBoundariesFromSorted(sorted);
  }
}

void EquiDepthHistogram::BuildBoundariesFromSorted(
    std::span<const double> sorted) const {
  boundaries_.assign(static_cast<size_t>(buckets_) + 1, lo_);
  if (sorted.empty()) {
    boundaries_.back() = hi_;
    built_at_count_ = 0;
    return;
  }
  boundaries_.front() = lo_;
  boundaries_.back() = hi_;
  for (int b = 1; b < buckets_; ++b) {
    const double pos = static_cast<double>(b) / static_cast<double>(buckets_) *
                       static_cast<double>(sorted.size() - 1);
    const auto idx = static_cast<size_t>(pos);
    const double frac = pos - std::floor(pos);
    const double value = sorted[idx] * (1.0 - frac) +
                         sorted[std::min(idx + 1, sorted.size() - 1)] * frac;
    boundaries_[static_cast<size_t>(b)] = value;
  }
  // Boundaries must be non-decreasing even for highly skewed data.
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    boundaries_[i] = std::max(boundaries_[i], boundaries_[i - 1]);
  }
  built_at_count_ = values_.size();
}

double EquiDepthHistogram::CdfAt(double x) const {
  if (x <= boundaries_.front()) return 0.0;
  if (x >= boundaries_.back()) return 1.0;
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), x);
  const size_t bucket = static_cast<size_t>(it - boundaries_.begin()) - 1;
  const double bucket_lo = boundaries_[bucket];
  const double bucket_hi = boundaries_[bucket + 1];
  const double mass_per_bucket = 1.0 / static_cast<double>(buckets_);
  const double within =
      bucket_hi > bucket_lo ? (x - bucket_lo) / (bucket_hi - bucket_lo) : 1.0;
  return mass_per_bucket * (static_cast<double>(bucket) + within);
}

double EquiDepthHistogram::EstimateRangeImpl(double a, double b) const {
  if (values_.empty()) return 0.0;
  RebuildIfStale();
  return CdfAt(b) - CdfAt(a);
}

void EquiDepthHistogram::AnswerImpl(std::span<const Query> queries,
                                    std::span<double> out) const {
  if (values_.empty()) {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = AnswerOne(queries[i]);
    return;
  }
  RebuildIfStale();
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    switch (q.kind) {
      case QueryKind::kLess:
      case QueryKind::kCdf:
        // One CdfAt. Bit-identical to CdfAt(x) - CdfAt(-inf): the -inf
        // endpoint falls below the first boundary, where CdfAt is exactly 0.
        out[i] = CdfAt(q.a);
        break;
      default:
        out[i] = AnswerOne(q);
        break;
    }
  }
}

std::string EquiDepthHistogram::name() const {
  return Format("equi-depth(%d)", buckets_);
}

std::unique_ptr<SelectivityEstimator> EquiDepthHistogram::CloneEmpty() const {
  return std::make_unique<EquiDepthHistogram>(lo_, hi_, buckets_, refit_mode_);
}

Status EquiDepthHistogram::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const EquiDepthHistogram&>(other);
  if (lo_ != rhs.lo_ || hi_ != rhs.hi_ || buckets_ != rhs.buckets_) {
    return Status::FailedPrecondition("MergeFrom: " + name() +
                                      " domain/bucket mismatch with " +
                                      rhs.name());
  }
  // The sorted shadow survives: it mirrors the immutable prefix
  // values_[0..sorted_.size()), which appends never disturb.
  values_.insert(values_.end(), rhs.values_.begin(), rhs.values_.end());
  boundaries_.clear();  // stale; rebuilt (sorted) at the next query
  built_at_count_ = 0;
  return Status::OK();
}

Status EquiDepthHistogram::MergeTailFrom(const SelectivityEstimator& other,
                                         size_t from_count) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const EquiDepthHistogram&>(other);
  if (lo_ != rhs.lo_ || hi_ != rhs.hi_ || buckets_ != rhs.buckets_) {
    return Status::FailedPrecondition("MergeTailFrom: " + name() +
                                      " domain/bucket mismatch with " +
                                      rhs.name());
  }
  if (from_count > rhs.values_.size()) {
    return Status::InvalidArgument("MergeTailFrom: from_count past peer count");
  }
  // Append only the peer's tail; the boundary cache goes stale through the
  // ordinary count check and the next rebuild delta-merges the delta.
  values_.insert(values_.end(),
                 rhs.values_.begin() + static_cast<ptrdiff_t>(from_count),
                 rhs.values_.end());
  return Status::OK();
}

Status EquiDepthHistogram::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, hi_));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, buckets_));
  return io::WriteDoubleVector(sink, values_);
}

Status EquiDepthHistogram::LoadStateImpl(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const double lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double hi, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const int32_t buckets, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> values, io::ReadDoubleVector(source));
  // The bucket cap mirrors equi-width's cell cap: RebuildIfStale allocates
  // buckets + 1 boundaries, so an unbounded hostile count would turn into a
  // multi-GB allocation at the first query instead of an error here.
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi) || buckets <= 0 ||
      buckets > (1 << 26) || source.remaining() != 0) {
    return Status::InvalidArgument("corrupt equi-depth snapshot");
  }
  lo_ = lo;
  hi_ = hi;
  buckets_ = buckets;
  values_ = std::move(values);
  sorted_.clear();  // rebuilt (one full sort) at the first post-restore query
  boundaries_.clear();
  built_at_count_ = 0;
  return Status::OK();
}

Status EquiDepthHistogram::SaveFastStateImpl(memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), hi_));
  WDE_RETURN_IF_ERROR(io::WriteI32(writer.head(), buckets_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), values_.size()));
  const bool has_boundaries = !boundaries_.empty();
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), has_boundaries ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), built_at_count_));
  writer.AddF64(values_);
  // The derived boundary cache rides along when built: restore then skips
  // the O(n log n) quantile sort the portable load pays at its first query.
  if (has_boundaries) writer.AddF64(boundaries_);
  return Status::OK();
}

Status EquiDepthHistogram::LoadFastStateImpl(memory::FastStateReader& reader) {
  WDE_ASSIGN_OR_RETURN(const double lo, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double hi, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const int32_t buckets, io::ReadI32(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t n_values, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t has_boundaries, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t built_at, io::ReadU64(reader.head()));
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi) || buckets <= 0 ||
      buckets > (1 << 26) || has_boundaries > 1 || built_at > n_values ||
      reader.head().remaining() != 0) {
    return Status::InvalidArgument("corrupt equi-depth fast state");
  }
  std::vector<memory::ColumnSpec> expected = {
      {memory::ColumnKind::kF64, static_cast<size_t>(n_values)}};
  if (has_boundaries != 0) {
    expected.push_back({memory::ColumnKind::kF64,
                        static_cast<size_t>(buckets) + 1});
  }
  if (!memory::ColumnsMatch(reader.arena(), expected)) {
    return Status::InvalidArgument("corrupt equi-depth fast state columns");
  }
  std::vector<double> boundaries;
  if (has_boundaries != 0) {
    const std::span<const double> cached = reader.arena().F64(1);
    // The boundary cache is consumed by binary search; a non-monotone or
    // non-finite hostile cache must be rejected, not served.
    for (size_t i = 0; i < cached.size(); ++i) {
      if (!std::isfinite(cached[i]) || (i > 0 && cached[i] < cached[i - 1])) {
        return Status::InvalidArgument("corrupt equi-depth boundary cache");
      }
    }
    boundaries.assign(cached.begin(), cached.end());
  }
  // Values are append-mutated by Insert, so they stay a vector: one bulk
  // copy out of the column, no element-wise decode.
  const std::span<const double> values = reader.arena().F64(0);
  lo_ = lo;
  hi_ = hi;
  buckets_ = buckets;
  values_.assign(values.begin(), values.end());
  sorted_.clear();  // rebuilt (one full sort) at the first stale rebuild
  boundaries_ = std::move(boundaries);
  built_at_count_ = static_cast<size_t>(built_at);
  return Status::OK();
}

}  // namespace selectivity
}  // namespace wde
