#include "selectivity/estimator_registry.hpp"

#include <cstdio>
#include <utility>

#include "io/chunk.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace selectivity {

namespace {

/// Shells are placeholders whose configuration LoadState overwrites, so they
/// are built as small as each constructor allows. The wavelet shell's basis
/// is replaced by the one the snapshot identifies; coarse tables keep its
/// construction cheap.
void RegisterBuiltins(EstimatorRegistry& registry) {
  const auto register_or_die = [&registry](const char* tag,
                                           EstimatorRegistry::Factory factory) {
    WDE_CHECK_OK(registry.Register(tag, std::move(factory)));
  };
  register_or_die("equi-width", [] {
    return std::make_unique<EquiWidthHistogram>(0.0, 1.0, 1);
  });
  register_or_die("equi-depth", [] {
    return std::make_unique<EquiDepthHistogram>(0.0, 1.0, 1);
  });
  register_or_die("reservoir", [] {
    return std::make_unique<ReservoirSampleSelectivity>(1);
  });
  register_or_die("kde-rot", [] {
    return std::make_unique<KdeSelectivity>(KdeSelectivity::Options{});
  });
  register_or_die("haar-synopsis",
                  []() -> std::unique_ptr<SelectivityEstimator> {
                    WaveletSynopsisSelectivity::Options options;
                    options.grid_log2 = 2;
                    Result<WaveletSynopsisSelectivity> shell =
                        WaveletSynopsisSelectivity::Create(options);
                    WDE_CHECK(shell.ok(), "synopsis shell options are valid");
                    return std::make_unique<WaveletSynopsisSelectivity>(
                        std::move(shell).value());
                  });
  register_or_die("wavelet-cv", []() -> std::unique_ptr<SelectivityEstimator> {
    Result<wavelet::WaveletBasis> basis =
        wavelet::WaveletBasis::Create(wavelet::WaveletFilter::Haar(), 4);
    WDE_CHECK(basis.ok(), "Haar shell basis is valid");
    StreamingWaveletSelectivity::Options options;
    options.j0 = 0;
    options.j_max = 0;
    Result<StreamingWaveletSelectivity> shell =
        StreamingWaveletSelectivity::Create(*basis, options);
    WDE_CHECK(shell.ok(), "wavelet shell options are valid");
    return std::make_unique<StreamingWaveletSelectivity>(std::move(shell).value());
  });
  register_or_die("sharded", []() -> std::unique_ptr<SelectivityEstimator> {
    const EquiWidthHistogram prototype(0.0, 1.0, 1);
    ShardedSelectivityEstimator::Options options;
    options.shards = 1;
    Result<ShardedSelectivityEstimator> shell =
        ShardedSelectivityEstimator::Create(prototype, options);
    WDE_CHECK(shell.ok(), "sharded shell options are valid");
    return std::make_unique<ShardedSelectivityEstimator>(std::move(shell).value());
  });
}

}  // namespace

EstimatorRegistry& EstimatorRegistry::Global() {
  static EstimatorRegistry* registry = [] {
    auto* r = new EstimatorRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status EstimatorRegistry::Register(const std::string& tag, Factory factory) {
  if (tag.empty()) return Status::InvalidArgument("empty snapshot tag");
  if (factory == nullptr) {
    return Status::InvalidArgument("null factory for snapshot tag '" + tag + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = factories_.emplace(tag, std::move(factory));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("snapshot tag '" + tag +
                                   "' is already registered");
  }
  return Status::OK();
}

bool EstimatorRegistry::Contains(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(tag) != 0;
}

std::vector<std::string> EstimatorRegistry::Tags() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> tags;
  tags.reserve(factories_.size());
  for (const auto& [tag, factory] : factories_) tags.push_back(tag);
  return tags;  // std::map iterates sorted
}

std::unique_ptr<SelectivityEstimator> EstimatorRegistry::MakeShell(
    const std::string& tag) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(tag);
    if (it == factories_.end()) return nullptr;
    factory = it->second;
  }
  return factory();
}

Status SaveEstimatorEnvelope(const SelectivityEstimator& estimator,
                             io::Sink& sink) {
  return estimator.SaveState(sink);
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
    io::Source& source) {
  WDE_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> tag_bytes,
      io::ReadChunkExpecting(source, internal::kChunkEstimatorType));
  const std::string tag(tag_bytes.begin(), tag_bytes.end());
  std::unique_ptr<SelectivityEstimator> shell =
      EstimatorRegistry::Global().MakeShell(tag);
  if (shell == nullptr) {
    return Status::NotFound("no estimator registered for snapshot tag '" + tag +
                            "'");
  }
  WDE_RETURN_IF_ERROR(shell->LoadEnvelopeState(source));
  return shell;
}

Status SaveEstimatorSnapshot(const SelectivityEstimator& estimator,
                             io::Sink& sink) {
  WDE_RETURN_IF_ERROR(io::WriteSnapshotHeader(sink));
  return estimator.SaveState(sink);
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshot(
    io::Source& source) {
  WDE_RETURN_IF_ERROR(io::ReadSnapshotHeader(source).status());
  Result<std::unique_ptr<SelectivityEstimator>> estimator =
      LoadEstimatorEnvelope(source);
  if (!estimator.ok()) return estimator.status();
  if (source.remaining() != 0) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  return estimator;
}

Status SaveEstimatorSnapshotFile(const SelectivityEstimator& estimator,
                                 const std::string& path) {
  // Write-then-rename so the save is crash-safe: a kill or disk-full midway
  // leaves the previous snapshot at `path` intact instead of a truncated
  // file (checkpoint loops overwrite the same path).
  const std::string tmp_path = path + ".tmp";
  Result<io::FileSink> sink = io::FileSink::Open(tmp_path);
  if (!sink.ok()) return sink.status();
  Status written = SaveEstimatorSnapshot(estimator, *sink);
  if (written.ok()) written = sink->Close();
  if (!written.ok()) {
    std::remove(tmp_path.c_str());
    return written;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot move finished snapshot over '" + path + "'");
  }
  return Status::OK();
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshotFile(
    const std::string& path) {
  Result<io::FileSource> source = io::FileSource::Open(path);
  if (!source.ok()) return source.status();
  return LoadEstimatorSnapshot(*source);
}

Status SelectivityEstimator::MergeFromSnapshot(io::Source& source) {
  Result<std::unique_ptr<SelectivityEstimator>> loaded =
      LoadEstimatorSnapshot(source);
  if (!loaded.ok()) return loaded.status();
  return MergeFrom(**loaded);
}

}  // namespace selectivity
}  // namespace wde
