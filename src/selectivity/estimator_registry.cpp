#include "selectivity/estimator_registry.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/thresholding.hpp"
#include "io/chunk.hpp"
#include "selectivity/grid2d_selectivity.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde2d_selectivity.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "wavelet/filter.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace selectivity {

namespace {

/// Every factory pins the spec to its tag's native dimensionality: a spec
/// cannot silently build an estimator that ignores half its coordinates.
Status CheckDims(const EstimatorSpec& spec, int native_dims) {
  if (spec.dims != native_dims) {
    return Status::InvalidArgument(
        "spec '" + spec.tag + "': dims must be " + std::to_string(native_dims));
  }
  return Status::OK();
}

/// Validation shared by the tags that declare a domain.
Status CheckDomain(const EstimatorSpec& spec) {
  if (!std::isfinite(spec.domain_lo) || !std::isfinite(spec.domain_hi) ||
      !(spec.domain_lo < spec.domain_hi)) {
    return Status::InvalidArgument("spec '" + spec.tag +
                                   "': domain_lo must be < domain_hi");
  }
  return Status::OK();
}

/// Axis-1 counterpart for the 2-D tags.
Status CheckDomain2(const EstimatorSpec& spec) {
  if (!std::isfinite(spec.domain2_lo) || !std::isfinite(spec.domain2_hi) ||
      !(spec.domain2_lo < spec.domain2_hi)) {
    return Status::InvalidArgument("spec '" + spec.tag +
                                   "': domain2_lo must be < domain2_hi");
  }
  return Status::OK();
}

Result<std::unique_ptr<SelectivityEstimator>> MakeEquiWidth(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 1));
  WDE_RETURN_IF_ERROR(CheckDomain(spec));
  if (spec.buckets <= 0) {
    return Status::InvalidArgument("spec 'equi-width': buckets must be positive");
  }
  return std::unique_ptr<SelectivityEstimator>(std::make_unique<EquiWidthHistogram>(
      spec.domain_lo, spec.domain_hi, spec.buckets));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeEquiDepth(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 1));
  WDE_RETURN_IF_ERROR(CheckDomain(spec));
  if (spec.buckets <= 0) {
    return Status::InvalidArgument("spec 'equi-depth': buckets must be positive");
  }
  return std::unique_ptr<SelectivityEstimator>(std::make_unique<EquiDepthHistogram>(
      spec.domain_lo, spec.domain_hi, spec.buckets, spec.refit_mode));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeReservoir(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 1));
  if (spec.capacity == 0) {
    return Status::InvalidArgument("spec 'reservoir': capacity must be positive");
  }
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<ReservoirSampleSelectivity>(spec.capacity, spec.seed));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeKde(const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 1));
  WDE_RETURN_IF_ERROR(CheckDomain(spec));
  if (spec.refit_interval == 0) {
    return Status::InvalidArgument("spec 'kde-rot': refit_interval must be positive");
  }
  if (!std::isfinite(spec.kde_eval_tolerance) || spec.kde_eval_tolerance < 0.0) {
    return Status::InvalidArgument(
        "spec 'kde-rot': kde_eval_tolerance must be finite and >= 0");
  }
  KdeSelectivity::Options options;
  options.domain_lo = spec.domain_lo;
  options.domain_hi = spec.domain_hi;
  options.refit_interval = spec.refit_interval;
  options.eval_tolerance = spec.kde_eval_tolerance;
  options.refit_mode = spec.refit_mode;
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<KdeSelectivity>(options));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeSynopsis(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 1));
  WaveletSynopsisSelectivity::Options options;
  options.domain_lo = spec.domain_lo;
  options.domain_hi = spec.domain_hi;
  options.grid_log2 = spec.grid_log2;
  options.budget = spec.budget;
  options.rebuild_interval = spec.refit_interval;
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create(options);
  if (!synopsis.ok()) return synopsis.status();
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<WaveletSynopsisSelectivity>(std::move(synopsis).value()));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeWaveletSketch(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 1));
  WDE_RETURN_IF_ERROR(CheckDomain(spec));
  Result<wavelet::WaveletFilter> filter = wavelet::WaveletFilter::FromName(spec.filter);
  if (!filter.ok()) return filter.status();
  Result<wavelet::WaveletBasis> basis =
      wavelet::WaveletBasis::Create(*filter, spec.table_levels);
  if (!basis.ok()) return basis.status();
  StreamingWaveletSelectivity::Options options;
  options.domain_lo = spec.domain_lo;
  options.domain_hi = spec.domain_hi;
  options.j0 = spec.j0;
  options.j_max = spec.j_max;
  options.kind = spec.soft_threshold ? core::ThresholdKind::kSoft
                                     : core::ThresholdKind::kHard;
  options.refit_interval = spec.refit_interval;
  options.refit_mode = spec.refit_mode;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(*basis, options);
  if (!sketch.ok()) return sketch.status();
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<StreamingWaveletSelectivity>(std::move(sketch).value()));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeKde2d(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 2));
  WDE_RETURN_IF_ERROR(CheckDomain(spec));
  WDE_RETURN_IF_ERROR(CheckDomain2(spec));
  if (spec.refit_interval == 0) {
    return Status::InvalidArgument(
        "spec 'kde2d-prod': refit_interval must be positive");
  }
  if (!std::isfinite(spec.kde2d_alpha) || spec.kde2d_alpha < 0.0 ||
      spec.kde2d_alpha > 1.0) {
    return Status::InvalidArgument(
        "spec 'kde2d-prod': kde2d_alpha must be in [0, 1]");
  }
  Kde2dSelectivity::Options options;
  options.domain_lo0 = spec.domain_lo;
  options.domain_hi0 = spec.domain_hi;
  options.domain_lo1 = spec.domain2_lo;
  options.domain_hi1 = spec.domain2_hi;
  options.refit_interval = spec.refit_interval;
  options.alpha = spec.kde2d_alpha;
  options.cv_bandwidths = spec.kde2d_cv;
  options.refit_mode = spec.refit_mode;
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<Kde2dSelectivity>(options));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeGrid2d(
    const EstimatorSpec& spec) {
  WDE_RETURN_IF_ERROR(CheckDims(spec, 2));
  WDE_RETURN_IF_ERROR(CheckDomain(spec));
  WDE_RETURN_IF_ERROR(CheckDomain2(spec));
  if (spec.grid_log2 < 1 || spec.grid_log2 > 10) {
    return Status::InvalidArgument(
        "spec 'grid2d': grid_log2 must be in [1, 10] (the grid is "
        "2^grid_log2 x 2^grid_log2 cells)");
  }
  return std::unique_ptr<SelectivityEstimator>(std::make_unique<Grid2dHistogram>(
      spec.domain_lo, spec.domain_hi, spec.domain2_lo, spec.domain2_hi,
      spec.grid_log2));
}

Result<std::unique_ptr<SelectivityEstimator>> MakeSharded(
    const EstimatorSpec& spec) {
  // No CheckDims here: the wrapper's dimensionality is the prototype's, and
  // the inner factory (which sees the same spec.dims) validates it.
  if (spec.sharded_inner_tag == "sharded") {
    return Status::InvalidArgument(
        "spec 'sharded': nesting sharded inside sharded is not supported");
  }
  EstimatorSpec inner = spec;
  inner.tag = spec.sharded_inner_tag;
  Result<std::unique_ptr<SelectivityEstimator>> prototype =
      EstimatorRegistry::Global().Make(inner);
  if (!prototype.ok()) return prototype.status();
  ShardedSelectivityEstimator::Options options;
  options.shards = spec.shards;
  options.block_size = spec.block_size;
  options.merge_refresh_interval = spec.merge_refresh_interval;
  options.pool = spec.pool;
  options.refit_mode = spec.refit_mode;
  Result<ShardedSelectivityEstimator> sharded =
      ShardedSelectivityEstimator::Create(**prototype, options);
  if (!sharded.ok()) return sharded.status();
  return std::unique_ptr<SelectivityEstimator>(
      std::make_unique<ShardedSelectivityEstimator>(std::move(sharded).value()));
}

void RegisterBuiltins(EstimatorRegistry& registry) {
  const auto register_or_die = [&registry](const char* tag,
                                           EstimatorRegistry::Factory factory,
                                           int dims = 1) {
    WDE_CHECK_OK(registry.Register(tag, std::move(factory), dims));
  };
  register_or_die("equi-width", MakeEquiWidth);
  register_or_die("equi-depth", MakeEquiDepth);
  register_or_die("reservoir", MakeReservoir);
  register_or_die("kde-rot", MakeKde);
  register_or_die("haar-synopsis", MakeSynopsis);
  register_or_die("wavelet-cv", MakeWaveletSketch);
  register_or_die("kde2d-prod", MakeKde2d, 2);
  register_or_die("grid2d", MakeGrid2d, 2);
  // "sharded" is registered 1-D (its shell wraps a 1-D prototype); wrapping
  // a 2-D inner tag works by setting spec.dims = 2, which the inner factory
  // validates.
  register_or_die("sharded", MakeSharded);
}

}  // namespace

EstimatorSpec EstimatorSpec::ShellFor(const std::string& tag) {
  // Minimal along every axis at once, so one shell spec serves every tag:
  // LoadState replaces configuration and data, the shell only has to be a
  // cheaply constructed instance of the right concrete type.
  EstimatorSpec shell;
  shell.tag = tag;
  shell.dims = EstimatorRegistry::Global().NativeDims(tag);
  if (shell.dims == 0) shell.dims = 1;  // unknown tag: Make will NotFound it
  shell.buckets = 1;
  shell.grid_log2 = 2;
  shell.budget = 1;
  shell.filter = "haar";
  shell.table_levels = 4;
  shell.j0 = 0;
  shell.j_max = 0;
  shell.capacity = 1;
  shell.sharded_inner_tag = "equi-width";
  shell.shards = 1;
  return shell;
}

Result<std::unique_ptr<SelectivityEstimator>> MakeEstimator(
    const EstimatorSpec& spec) {
  return EstimatorRegistry::Global().Make(spec);
}

EstimatorRegistry& EstimatorRegistry::Global() {
  static EstimatorRegistry* registry = [] {
    auto* r = new EstimatorRegistry();
    RegisterBuiltins(*r);
    return r;
  }();
  return *registry;
}

Status EstimatorRegistry::Register(const std::string& tag, Factory factory,
                                   int dims) {
  if (tag.empty()) return Status::InvalidArgument("empty snapshot tag");
  if (factory == nullptr) {
    return Status::InvalidArgument("null factory for snapshot tag '" + tag + "'");
  }
  if (dims < 1) {
    return Status::InvalidArgument("snapshot tag '" + tag +
                                   "' registered with dims < 1");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      factories_.emplace(tag, Entry{std::move(factory), dims});
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("snapshot tag '" + tag +
                                   "' is already registered");
  }
  return Status::OK();
}

bool EstimatorRegistry::Contains(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(tag) != 0;
}

int EstimatorRegistry::NativeDims(const std::string& tag) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = factories_.find(tag);
  return it == factories_.end() ? 0 : it->second.dims;
}

std::vector<std::string> EstimatorRegistry::Tags() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> tags;
  tags.reserve(factories_.size());
  for (const auto& [tag, entry] : factories_) tags.push_back(tag);
  return tags;  // std::map iterates sorted
}

Result<std::unique_ptr<SelectivityEstimator>> EstimatorRegistry::Make(
    const EstimatorSpec& spec) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(spec.tag);
    if (it == factories_.end()) {
      return Status::NotFound("no estimator registered for tag '" + spec.tag +
                              "'");
    }
    factory = it->second.factory;
  }
  return factory(spec);
}

std::unique_ptr<SelectivityEstimator> EstimatorRegistry::MakeShell(
    const std::string& tag) const {
  Result<std::unique_ptr<SelectivityEstimator>> shell =
      Make(EstimatorSpec::ShellFor(tag));
  if (!shell.ok()) return nullptr;
  return std::move(shell).value();
}

Status SaveEstimatorEnvelope(const SelectivityEstimator& estimator,
                             io::Sink& sink) {
  return estimator.SaveState(sink);
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
    io::Source& source) {
  WDE_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> tag_bytes,
      io::ReadChunkExpecting(source, internal::kChunkEstimatorType));
  const std::string tag(tag_bytes.begin(), tag_bytes.end());
  std::unique_ptr<SelectivityEstimator> shell =
      EstimatorRegistry::Global().MakeShell(tag);
  if (shell == nullptr) {
    return Status::NotFound("no estimator registered for snapshot tag '" + tag +
                            "'");
  }
  WDE_RETURN_IF_ERROR(shell->LoadEnvelopeState(source));
  return shell;
}

Status SaveEstimatorSnapshot(const SelectivityEstimator& estimator,
                             io::Sink& sink) {
  WDE_RETURN_IF_ERROR(io::WriteSnapshotHeader(sink));
  return estimator.SaveState(sink);
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshot(
    io::Source& source) {
  WDE_RETURN_IF_ERROR(io::ReadSnapshotHeader(source).status());
  Result<std::unique_ptr<SelectivityEstimator>> estimator =
      LoadEstimatorEnvelope(source);
  if (!estimator.ok()) return estimator.status();
  if (source.remaining() != 0) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  return estimator;
}

namespace {

/// Shared write-then-rename wrapper so every file save is crash-safe: a kill
/// or disk-full midway leaves the previous snapshot at `path` intact instead
/// of a truncated file (checkpoint loops overwrite the same path).
template <typename Saver>
Status SaveSnapshotFileWith(const std::string& path, Saver&& saver) {
  const std::string tmp_path = path + ".tmp";
  Result<io::FileSink> sink = io::FileSink::Open(tmp_path);
  if (!sink.ok()) return sink.status();
  Status written = saver(*sink);
  if (written.ok()) written = sink->Close();
  if (!written.ok()) {
    std::remove(tmp_path.c_str());
    return written;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot move finished snapshot over '" + path + "'");
  }
  return Status::OK();
}

}  // namespace

Status SaveEstimatorSnapshotFile(const SelectivityEstimator& estimator,
                                 const std::string& path) {
  return SaveSnapshotFileWith(path, [&estimator](io::Sink& sink) {
    return SaveEstimatorSnapshot(estimator, sink);
  });
}

Status SaveEstimatorSnapshotFast(const SelectivityEstimator& estimator,
                                 io::Sink& sink) {
  WDE_RETURN_IF_ERROR(io::WriteSnapshotHeader(sink));
  // The envelope begins right after the 12-byte snapshot header; the offset
  // lets the fast frame pad its column region to an absolute 64-byte file
  // offset (see SelectivityEstimator::SaveStateFast).
  return estimator.SaveStateFast(sink, 12);
}

Status SaveEstimatorSnapshotFastFile(const SelectivityEstimator& estimator,
                                     const std::string& path) {
  return SaveSnapshotFileWith(path, [&estimator](io::Sink& sink) {
    return SaveEstimatorSnapshotFast(estimator, sink);
  });
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshotFileMapped(
    const std::string& path) {
  Result<io::FileSource> source = io::FileSource::OpenMapped(path);
  if (!source.ok()) return source.status();
  // The ordinary loader dispatches on the state chunk kind; with a mapped
  // source the fast path borrows the mapping zero-copy, anchored by the
  // source's backing handle for the estimator's lifetime.
  return LoadEstimatorSnapshot(*source);
}

Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshotFile(
    const std::string& path) {
  Result<io::FileSource> source = io::FileSource::Open(path);
  if (!source.ok()) return source.status();
  return LoadEstimatorSnapshot(*source);
}

Result<std::unique_ptr<SelectivityEstimator>> CloneViaSnapshot(
    const SelectivityEstimator& estimator) {
  if (!estimator.snapshotable()) {
    return Status::FailedPrecondition(estimator.name() +
                                      " does not support snapshots");
  }
  io::VectorSink sink;
  WDE_RETURN_IF_ERROR(estimator.SaveState(sink));
  io::SpanSource source(sink.bytes());
  Result<std::unique_ptr<SelectivityEstimator>> clone =
      LoadEstimatorEnvelope(source);
  if (!clone.ok()) return clone.status();
  if (source.remaining() != 0) {
    return Status::Internal(estimator.name() +
                            " wrote trailing bytes after its envelope");
  }
  return clone;
}

Status SelectivityEstimator::MergeFromSnapshot(io::Source& source) {
  Result<std::unique_ptr<SelectivityEstimator>> loaded =
      LoadEstimatorSnapshot(source);
  if (!loaded.ok()) return loaded.status();
  return MergeFrom(**loaded);
}

}  // namespace selectivity
}  // namespace wde
