#ifndef WDE_SELECTIVITY_QUERY_WORKLOAD_HPP_
#define WDE_SELECTIVITY_QUERY_WORKLOAD_HPP_

#include <functional>
#include <span>
#include <vector>

#include "selectivity/selectivity_estimator.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace selectivity {

/// Generates `count` queries with both endpoints uniform over the domain
/// (sorted per query).
std::vector<RangeQuery> UniformRangeWorkload(stats::Rng& rng, size_t count,
                                             double domain_lo, double domain_hi);

/// Generates `count` queries with uniform centers and widths in
/// [min_width, max_width], clipped to the domain — the typical analytic
/// "short range scan" workload.
std::vector<RangeQuery> CenteredRangeWorkload(stats::Rng& rng, size_t count,
                                              double domain_lo, double domain_hi,
                                              double min_width, double max_width);

/// Relative frequencies of the query kinds in a mixed workload (normalized
/// internally; a zero weight drops the kind). The default mix resembles an
/// optimizer trace: mostly ranges with a steady tail of equality, one-sided,
/// CDF and quantile probes.
struct QueryKindMix {
  double range = 0.40;
  double point = 0.12;
  double less = 0.12;
  double greater = 0.12;
  double cdf = 0.12;
  double quantile = 0.12;
  /// Multi-dimensional kinds, off by default so 1-D workloads are unchanged.
  /// Rect/conditional intervals draw both axes uniform over the same domain
  /// (sorted per axis); marginal picks axis 0 or 1 with equal probability.
  double rect = 0.0;
  double marginal = 0.0;
  double conditional = 0.0;
};

/// Generates `count` mixed-kind queries over the domain: range endpoints
/// uniform (sorted per query), point/one-sided/CDF parameters uniform in the
/// domain, quantile levels uniform in [0, 1]. Kinds are drawn independently
/// from `mix`, so the workload interleaves kinds the way live optimizer
/// traffic does rather than batching by kind.
std::vector<Query> MixedQueryWorkload(stats::Rng& rng, size_t count,
                                      double domain_lo, double domain_hi,
                                      const QueryKindMix& mix = {});

/// Accuracy aggregates of an estimator against a ground-truth selectivity
/// oracle. The q-error is max(est, truth)/min(est, truth) with both floored
/// at `qerror_floor` (the DB-standard multiplicative error measure).
/// Scoring runs through the estimator's batch query path (EstimateBatch).
struct SelectivityAccuracy {
  double mean_abs_error = 0.0;
  double rmse = 0.0;
  double mean_qerror = 0.0;
  double max_qerror = 0.0;
  size_t queries = 0;
};

SelectivityAccuracy EvaluateAccuracy(
    const SelectivityEstimator& estimator, std::span<const RangeQuery> queries,
    const std::function<double(const RangeQuery&)>& truth,
    double qerror_floor = 1e-4);

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_QUERY_WORKLOAD_HPP_
