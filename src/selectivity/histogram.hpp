#ifndef WDE_SELECTIVITY_HISTOGRAM_HPP_
#define WDE_SELECTIVITY_HISTOGRAM_HPP_

#include <span>
#include <vector>

#include "memory/arena.hpp"
#include "selectivity/selectivity_estimator.hpp"

namespace wde {
namespace selectivity {

/// Classic equi-width histogram over a fixed domain with the
/// continuous-uniform assumption inside buckets — the standard optimizer
/// baseline the wavelet estimator competes with.
///
/// Queries run off a lazily rebuilt prefix-sum table: EstimateRangeImpl is
/// F(b) - F(a) with F evaluated in O(1) (bucket index + within-bucket
/// fraction), so ranges, one-sided predicates and CDF probes all cost O(1)
/// instead of a scan over every bucket, and the AnswerImpl override answers
/// Less/Cdf kinds with a single prefix lookup.
///
/// Mergeable: bucket counts are exact integer sums, so merging replicas over
/// disjoint sub-streams is bit-identical to one histogram over the
/// concatenated stream.
class EquiWidthHistogram : public SelectivityEstimator {
 public:
  EquiWidthHistogram(double lo, double hi, int buckets);

  void Insert(double x) override;
  size_t count() const override { return count_; }
  std::string name() const override;

  /// One bucket: the histogram's resolution is its equality width.
  double EqualityWidth() const override { return width_; }
  RangeQuery Domain() const override;

  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Adds `other`'s bucket counts element-wise; requires identical domain
  /// and bucket count.
  Status MergeFrom(const SelectivityEstimator& other) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "equi-width"; }

  int buckets() const { return static_cast<int>(buckets_); }

  /// Bucket counts (column 0 of the fitted-state arena); the snapshot fast
  /// path serializes this span verbatim.
  std::span<const double> bucket_counts() const { return bins_.F64(0); }

  bool supports_fast_snapshot() const override { return true; }

  /// O(1) + O(columns): the copy shares the bins arena copy-on-write.
  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<EquiWidthHistogram>(*this);
  }

 protected:
  double EstimateRangeImpl(double a, double b) const override;
  /// One staleness check for the whole batch, then Less/Cdf kinds answer
  /// with a single prefix-sum lookup (bit-identical to the two-lookup range
  /// lowering because F(domain lo) is exactly 0); other kinds fall back to
  /// the canonical lowering.
  void AnswerImpl(std::span<const Query> queries,
                  std::span<double> out) const override;
  /// Quiesce: rebuild the prefix table now (the only lazy state).
  void ForceRefitImpl() const override { RebuildPrefixIfStale(); }
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state: both arena columns travel verbatim — including the derived
  /// prefix table, so a restored histogram serves its first Less/Cdf query
  /// without the rebuild pass the portable load pays.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

 private:
  void RebuildPrefixIfStale() const;
  /// Estimated CDF at x (prefix mass + within-bucket fraction, continuous-
  /// uniform inside the bucket). Requires a fresh prefix table and count_>0.
  double CdfAt(double x) const;

  double lo_;
  double width_;
  size_t buckets_ = 0;
  size_t count_ = 0;
  /// Columns: [0] bucket counts, [1] exclusive prefix sums (derived cache,
  /// lazily rebuilt). Copies share the arena copy-on-write; the first
  /// mutation (insert, merge, load, or a prefix rebuild) un-shares it.
  mutable memory::Arena bins_;
  mutable bool prefix_valid_ = false;
  mutable size_t prefix_built_at_count_ = 0;
};

/// Equi-depth (equi-height) histogram: bucket boundaries at sample quantiles,
/// equal mass per bucket, linear interpolation inside buckets. Rebuilt lazily
/// from the retained values when stale (rebuild cost shows up in the perf
/// benches, as it would in ANALYZE).
///
/// Rebuilds honor the RefitMode passed at construction. kScratch re-sorts
/// the whole retained buffer per rebuild; kIncremental (the default)
/// maintains a sorted shadow of the retained buffer across rebuilds — sort
/// only the values appended since the last rebuild, one stable in-place
/// merge — so a rebuild costs O(Δ log Δ + n) instead of O(n log n). The
/// boundaries are a deterministic function of the sorted sequence, so both
/// modes answer bitwise-identically (refit_equivalence_test).
///
/// Mergeable: the retained sample buffers concatenate, and the lazy rebuild
/// sorts, so merged replicas answer exactly like the sequential histogram.
class EquiDepthHistogram : public SelectivityEstimator {
 public:
  EquiDepthHistogram(double lo, double hi, int buckets,
                     RefitMode refit_mode = RefitMode::kIncremental);

  void Insert(double x) override;
  size_t count() const override { return values_.size(); }
  std::string name() const override;

  /// One average-depth bucket of the domain (the boundaries move with the
  /// data; the declared resolution is the static domain fraction).
  double EqualityWidth() const override {
    return (hi_ - lo_) / static_cast<double>(buckets_);
  }
  RangeQuery Domain() const override { return RangeQuery{lo_, hi_}; }

  bool supports_fast_snapshot() const override { return true; }

  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<EquiDepthHistogram>(*this);
  }

  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Appends `other`'s retained values and invalidates the boundary cache;
  /// requires identical domain and bucket count.
  Status MergeFrom(const SelectivityEstimator& other) override;
  /// Tail-merge support for the sharded incremental merged-view refresh:
  /// appends only other's values from `from_count` onward; the sorted shadow
  /// and boundary cache stay (stale) for the next rebuild to delta-merge.
  bool SupportsTailMerge() const override { return true; }
  Status MergeTailFrom(const SelectivityEstimator& other,
                       size_t from_count) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "equi-depth"; }

 protected:
  double EstimateRangeImpl(double a, double b) const override;
  /// One boundary rebuild for the whole batch, then Less/Cdf kinds answer
  /// with a single CdfAt (bit-identical to the range lowering: CdfAt at the
  /// lower domain edge is exactly 0); other kinds fall back to the
  /// canonical lowering.
  void AnswerImpl(std::span<const Query> queries,
                  std::span<double> out) const override;
  /// The boundary cache is rebuilt whenever the retained count changes, so
  /// only the values travel: the restored histogram re-derives identical
  /// boundaries at its first query.
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state additionally persists the derived quantile boundaries (when
  /// built), so a restored histogram skips the O(n log n) sort its portable
  /// sibling pays at the first query.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;
  /// Quiesce: rebuild the boundary cache now (the only lazy state).
  void ForceRefitImpl() const override { RebuildIfStale(); }

 private:
  void RebuildIfStale() const;
  /// Derives the buckets_ + 1 boundary values from an ascending-sorted view
  /// of the retained values — shared by both refit modes, so the cache is a
  /// deterministic function of the sorted sequence alone.
  void BuildBoundariesFromSorted(std::span<const double> sorted) const;
  /// Estimated CDF at x from the bucket boundaries.
  double CdfAt(double x) const;

  double lo_;
  double hi_;
  int buckets_;
  RefitMode refit_mode_;
  std::vector<double> values_;
  /// kIncremental only: ascending-sorted shadow of the prefix
  /// values_[0..sorted_.size()) (the buffer only ever appends, so the prefix
  /// is immutable). Snapshot loads clear it — the first rebuild after a
  /// restore pays one full sort, after which deltas are cheap again.
  mutable std::vector<double> sorted_;
  mutable std::vector<double> boundaries_;  // buckets_ + 1 entries
  mutable size_t built_at_count_ = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_HISTOGRAM_HPP_
