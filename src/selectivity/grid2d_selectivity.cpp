#include "selectivity/grid2d_selectivity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "memory/fast_state.hpp"
#include "multidim/grid2d.hpp"
#include "numerics/simd.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

Grid2dHistogram::Grid2dHistogram(double lo0, double hi0, double lo1,
                                 double hi1, int grid_log2)
    : lo0_(lo0), lo1_(lo1), grid_log2_(grid_log2) {
  WDE_CHECK_LT(lo0, hi0);
  WDE_CHECK_LT(lo1, hi1);
  WDE_CHECK_GE(grid_log2, 1);
  WDE_CHECK_LE(grid_log2, 10);
  w0_ = hi0 - lo0;
  w1_ = hi1 - lo1;
  g_ = size_t{1} << grid_log2;
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, g_ * g_},
                                      {memory::ColumnKind::kF64, g_ * g_}};
  cells_ = memory::Arena::Create(specs);
}

void Grid2dHistogram::Insert(double x) {
  if (!have_pending_) {
    // First coordinate of an observation: buffer it raw. Even a non-finite
    // value must be buffered — dropping it alone would shift the interleave
    // parity and pair every later x with the wrong y.
    pending_ = x;
    have_pending_ = true;
    return;
  }
  const double px = pending_;
  have_pending_ = false;
  if (!std::isfinite(px) || !std::isfinite(x)) return;  // drop the whole point
  const size_t cell =
      multidim::CellIndex1d(std::clamp(px, lo0_, hi0()), lo0_, hi0(), g_) * g_ +
      multidim::CellIndex1d(std::clamp(x, lo1_, hi1()), lo1_, hi1(), g_);
  cells_.MutableF64(0)[cell] += 1.0;
  ++count_;
}

void Grid2dHistogram::RebuildPrefixIfStale() const {
  if (prefix_valid_ && prefix_built_at_count_ == count_) return;
  // Un-share first (MutableF64 may relocate the arena), then read the counts
  // span from the post-relocation storage.
  std::span<double> prefix = cells_.MutableF64(1);
  std::span<const double> counts = cells_.F64(0);
  // Integer-valued counts below 2^53: the summed-area table is exact and
  // bit-identical however the counts were accumulated.
  multidim::InclusivePrefix2d(counts, prefix, g_);
  prefix_valid_ = true;
  prefix_built_at_count_ = count_;
}

double Grid2dHistogram::EstimateRectImpl(double lo0, double hi0_q, double lo1,
                                         double hi1_q) const {
  if (count_ == 0) return 0.0;
  RebuildPrefixIfStale();
  const double mass =
      multidim::RectCount(cells_.F64(1), g_, lo0, hi0_q, lo1, hi1_q, lo0_,
                          hi0(), lo1_, hi1()) /
      static_cast<double>(count_);
  return std::clamp(mass, 0.0, 1.0);
}

double Grid2dHistogram::EstimateRangeImpl(double a, double b) const {
  // The axis-0 marginal IS the range primitive of a 2-D estimator.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return EstimateRectImpl(a, b, -kInf, kInf);
}

std::string Grid2dHistogram::name() const {
  return Format("grid2d(%d)", grid_log2_);
}

std::unique_ptr<SelectivityEstimator> Grid2dHistogram::CloneEmpty() const {
  // Copy-then-reset keeps lo/span bitwise identical to this instance
  // (re-deriving them could round differently and make the clone spuriously
  // merge-incompatible).
  auto clone = std::make_unique<Grid2dHistogram>(*this);
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, g_ * g_},
                                      {memory::ColumnKind::kF64, g_ * g_}};
  clone->cells_ = memory::Arena::Create(specs);
  clone->count_ = 0;
  clone->have_pending_ = false;
  clone->pending_ = 0.0;
  clone->prefix_valid_ = false;
  clone->prefix_built_at_count_ = 0;
  return clone;
}

Status Grid2dHistogram::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const Grid2dHistogram&>(other);
  if (lo0_ != rhs.lo0_ || w0_ != rhs.w0_ || lo1_ != rhs.lo1_ ||
      w1_ != rhs.w1_ || g_ != rhs.g_) {
    return Status::FailedPrecondition("MergeFrom: " + name() +
                                      " domain/grid mismatch with " +
                                      rhs.name());
  }
  // Bulk element-wise fold over the contiguous count columns; un-share
  // before taking the raw pointers. The peer's pending coordinate is not an
  // observation and stays with the peer.
  double* dst = cells_.MutableF64(0).data();
  const double* src = rhs.cells_.F64(0).data();
  const size_t n = g_ * g_;
  WDE_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
  count_ += rhs.count_;
  prefix_valid_ = false;  // stale; rebuilt at the next query
  prefix_built_at_count_ = 0;
  return Status::OK();
}

Status Grid2dHistogram::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo0_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, w0_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo1_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, w1_));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, grid_log2_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, count_));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, have_pending_ ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, pending_));
  return io::WriteDoubleVector(sink, cells_.F64(0));
}

Status Grid2dHistogram::LoadStateImpl(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const double lo0, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double w0, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double lo1, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double w1, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const int32_t grid_log2, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint8_t have_pending, io::ReadU8(source));
  WDE_ASSIGN_OR_RETURN(const double pending, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> counts, io::ReadDoubleVector(source));
  const size_t g = grid_log2 >= 1 && grid_log2 <= 10
                       ? size_t{1} << grid_log2
                       : 0;
  if (!std::isfinite(lo0) || !std::isfinite(w0) || !(w0 > 0.0) ||
      !std::isfinite(lo1) || !std::isfinite(w1) || !(w1 > 0.0) || g == 0 ||
      have_pending > 1 || counts.size() != g * g || source.remaining() != 0) {
    return Status::InvalidArgument("corrupt grid2d snapshot");
  }
  lo0_ = lo0;
  w0_ = w0;
  lo1_ = lo1;
  w1_ = w1;
  grid_log2_ = grid_log2;
  g_ = g;
  count_ = static_cast<size_t>(count);
  have_pending_ = have_pending != 0;
  pending_ = pending;
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, g_ * g_},
                                      {memory::ColumnKind::kF64, g_ * g_}};
  cells_ = memory::Arena::Create(specs);
  std::copy(counts.begin(), counts.end(), cells_.MutableF64(0).begin());
  // The summed-area table is derived state: rebuilding from identical counts
  // at the first query reproduces identical answers.
  prefix_valid_ = false;
  prefix_built_at_count_ = 0;
  return Status::OK();
}

Status Grid2dHistogram::SaveFastStateImpl(memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), lo0_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), w0_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), lo1_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), w1_));
  WDE_RETURN_IF_ERROR(io::WriteI32(writer.head(), grid_log2_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), count_));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), have_pending_ ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), pending_));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), prefix_valid_ ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), prefix_built_at_count_));
  // Both columns travel verbatim: the counts are the data, the summed-area
  // table is the derived cache that spares the restored grid its first
  // rebuild pass.
  writer.AddF64(cells_.F64(0));
  writer.AddF64(cells_.F64(1));
  return Status::OK();
}

Status Grid2dHistogram::LoadFastStateImpl(memory::FastStateReader& reader) {
  WDE_ASSIGN_OR_RETURN(const double lo0, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double w0, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double lo1, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double w1, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const int32_t grid_log2, io::ReadI32(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t have_pending, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double pending, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t prefix_valid, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t prefix_built_at, io::ReadU64(reader.head()));
  const size_t g = grid_log2 >= 1 && grid_log2 <= 10
                       ? size_t{1} << grid_log2
                       : 0;
  const memory::ColumnSpec expected[] = {{memory::ColumnKind::kF64, g * g},
                                         {memory::ColumnKind::kF64, g * g}};
  if (!std::isfinite(lo0) || !std::isfinite(w0) || !(w0 > 0.0) ||
      !std::isfinite(lo1) || !std::isfinite(w1) || !(w1 > 0.0) || g == 0 ||
      have_pending > 1 || prefix_valid > 1 ||
      (prefix_valid != 0 && prefix_built_at > count) ||
      !memory::ColumnsMatch(reader.arena(), expected) ||
      reader.head().remaining() != 0) {
    return Status::InvalidArgument("corrupt grid2d fast state");
  }
  lo0_ = lo0;
  w0_ = w0;
  lo1_ = lo1;
  w1_ = w1;
  grid_log2_ = grid_log2;
  g_ = g;
  count_ = static_cast<size_t>(count);
  have_pending_ = have_pending != 0;
  pending_ = pending;
  // Adopt the parsed arena wholesale — borrowed zero-copy from an mmapped
  // image, in which case the first insert (not load) pays the un-share copy.
  cells_ = std::move(reader.arena());
  prefix_valid_ = prefix_valid != 0;
  prefix_built_at_count_ = static_cast<size_t>(prefix_built_at);
  return Status::OK();
}

}  // namespace selectivity
}  // namespace wde
