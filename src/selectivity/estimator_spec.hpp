/// \file selectivity/estimator_spec.hpp
/// The declarative construction surface of the selectivity layer: one plain
/// data description (`EstimatorSpec`) from which every registered estimator
/// is built through the spec-aware factory registry. The spec's `tag` IS the
/// estimator's snapshot_type_tag — one string keys live construction
/// (MakeEstimator), sharded wrapping (tag "sharded" + sharded_inner_tag),
/// snapshot restore (the registry rebuilds shells from ShellSpec through the
/// same factories) and the bench/example harnesses, so an estimator is
/// described the same way everywhere it is named. Unused fields are ignored
/// by tags that do not consume them; factories validate the fields they do
/// consume and return a Status instead of aborting on bad configuration.
#ifndef WDE_SELECTIVITY_ESTIMATOR_SPEC_HPP_
#define WDE_SELECTIVITY_ESTIMATOR_SPEC_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "selectivity/selectivity_estimator.hpp"
#include "util/result.hpp"

namespace wde {
namespace parallel {
class ThreadPool;
}  // namespace parallel

namespace selectivity {

class SelectivityEstimator;

/// One description of one estimator. Field groups are consumed per tag:
///   every tag        — tag, domain_lo/domain_hi (except "reservoir", which
///                      declares no domain)
///   "equi-width"     — buckets
///   "equi-depth"     — buckets, refit_mode
///   "haar-synopsis"  — grid_log2, budget, refit_interval (rebuild cadence)
///   "kde-rot"        — refit_interval, kde_eval_tolerance, refit_mode
///   "wavelet-cv"     — filter, table_levels, j0, j_max, soft_threshold,
///                      refit_interval, refit_mode
///   "reservoir"      — capacity, seed
///   "kde2d-prod"     — dims (must be 2), domain2_lo/domain2_hi,
///                      refit_interval, kde2d_alpha, kde2d_cv, refit_mode
///   "grid2d"         — dims (must be 2), domain2_lo/domain2_hi, grid_log2
///   "sharded"        — sharded_inner_tag (the prototype's tag; the rest of
///                      the spec configures that prototype), shards,
///                      block_size, merge_refresh_interval, pool, refit_mode
struct EstimatorSpec {
  /// Registry key; identical to the estimator's snapshot_type_tag().
  std::string tag = "equi-width";

  /// Dimensionality of the estimator. Every tag has one native
  /// dimensionality (EstimatorRegistry::NativeDims) and its factory rejects
  /// any other value, so a spec cannot silently build an estimator that
  /// ignores half its coordinates. Default 1 — existing specs are untouched.
  int dims = 1;

  // Shared: the declared value domain of axis 0 (and of 1-D estimators).
  double domain_lo = 0.0;
  double domain_hi = 1.0;

  // 2-D estimators: the declared value domain of axis 1.
  double domain2_lo = 0.0;
  double domain2_hi = 1.0;

  // Histograms.
  int buckets = 64;

  // Haar synopsis.
  int grid_log2 = 10;
  size_t budget = 64;

  // Wavelet sketch: basis identity (wavelet::WaveletFilter::FromName) and
  // level range.
  std::string filter = "sym8";
  int table_levels = 12;
  int j0 = 2;
  int j_max = 11;
  bool soft_threshold = true;

  /// Refit pacing: the wavelet/KDE refit interval and the synopsis rebuild
  /// interval.
  size_t refit_interval = 1024;

  /// KDE tree-pruned evaluation: certified absolute error budget per CDF
  /// endpoint (KdeSelectivity::Options::eval_tolerance); 0 answers exactly.
  double kde_eval_tolerance = 0.0;

  /// 2-D product KDE ("kde2d-prod"): adaptive-bandwidth sensitivity α in
  /// [0, 1] — per-point bandwidth factors λ_i = (pilot_i / g)^(-α), 0
  /// disables adaptivity — and whether a least-squares CV pass refines the
  /// per-dimension rule-of-thumb bandwidths.
  double kde2d_alpha = 0.5;
  bool kde2d_cv = false;

  /// Refit strategy for the tags that distinguish one ("kde-rot",
  /// "equi-depth", "wavelet-cv", "sharded"): kIncremental (default)
  /// delta-merges previously fitted state into each refit, kScratch rebuilds
  /// from zero — the bitwise-identical oracle the equivalence tests and
  /// benches compare against. An evaluation knob like refit_interval: not
  /// part of a snapshot's identity.
  RefitMode refit_mode = RefitMode::kIncremental;

  // Reservoir sample.
  size_t capacity = 256;
  uint64_t seed = 42;

  // Sharded wrapper. The prototype is this same spec re-tagged with
  // sharded_inner_tag (nesting sharded inside sharded is rejected). `pool`
  // is a runtime resource, never part of the description's identity;
  // nullptr uses the process-shared pool.
  std::string sharded_inner_tag = "equi-width";
  size_t shards = 4;
  size_t block_size = 4096;
  size_t merge_refresh_interval = 1;
  parallel::ThreadPool* pool = nullptr;

  /// The minimal valid spec for `tag`: what the registry builds snapshot
  /// shells from (LoadState replaces configuration and data, so shells are
  /// as small as each factory allows — 1 bucket, a 4-cell grid, a coarse
  /// Haar basis, capacity 1, one shard).
  static EstimatorSpec ShellFor(const std::string& tag);
};

/// Builds the estimator `spec` describes through the process-wide registry.
/// Unknown tags and invalid field values yield a non-OK Result.
Result<std::unique_ptr<SelectivityEstimator>> MakeEstimator(
    const EstimatorSpec& spec);

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_ESTIMATOR_SPEC_HPP_
