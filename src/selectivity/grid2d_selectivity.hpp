#ifndef WDE_SELECTIVITY_GRID2D_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_GRID2D_SELECTIVITY_HPP_

#include <span>

#include "memory/arena.hpp"
#include "selectivity/selectivity_estimator.hpp"

namespace wde {
namespace selectivity {

/// 2-D equi-width grid histogram over a fixed rectangle domain: g × g cells
/// (g = 2^grid_log2) with the continuous-uniform assumption inside each cell
/// — the multi-dimensional baseline the adaptive product KDE competes with,
/// and the first estimator to answer kRect natively.
///
/// Queries run off a lazily rebuilt inclusive 2-D prefix-sum table (summed-
/// area table, multidim/grid2d.hpp): a rectangle is four bilinear CDF
/// corners combined by inclusion-exclusion — O(1) per rect after the O(g²)
/// rebuild — and every 1-D kind lowers onto the axis-0 marginal
/// EstimateRangeImpl(a, b) = EstimateRectImpl(a, b, -inf, +inf).
///
/// Ingest is interleaved (x0, y0, x1, y1, ...): the first coordinate of an
/// observation is buffered raw, the second completes it — the whole
/// observation is dropped if EITHER coordinate is non-finite (dropping one
/// value alone would shift the interleave parity), otherwise each
/// coordinate clamps to its axis domain. count() reports complete
/// observations; a trailing unpaired coordinate is pending, not data.
///
/// Mergeable: cell counts are exact integer sums, so merging replicas over
/// disjoint sub-streams is bit-identical to one grid over the concatenated
/// stream. A peer's pending half-observation is not data and does not
/// travel (it is not an observation yet; the peer completes it with its own
/// next insert). No tail merge: additive-sum state re-merges in O(state)
/// anyway, so the sharded engine's scratch rebuild is already the right
/// cost — the documented scratch-only mode.
class Grid2dHistogram : public SelectivityEstimator {
 public:
  Grid2dHistogram(double lo0, double hi0, double lo1, double hi1,
                  int grid_log2);

  void Insert(double x) override;
  size_t count() const override { return count_; }
  std::string name() const override;

  /// One axis-0 cell: the grid's resolution along the first attribute.
  double EqualityWidth() const override { return w0_ / static_cast<double>(g_); }
  RangeQuery Domain() const override {
    return RangeQuery{lo0_, lo0_ + w0_};
  }
  int dims() const override { return 2; }

  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Adds `other`'s cell counts element-wise; requires identical domains and
  /// grid size. The peer's pending coordinate (if any) is ignored — see the
  /// class comment.
  Status MergeFrom(const SelectivityEstimator& other) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "grid2d"; }

  int grid_log2() const { return grid_log2_; }

  /// Cell counts (column 0 of the arena), row-major over (axis-0 cell,
  /// axis-1 cell); the snapshot fast path serializes this span verbatim.
  std::span<const double> cell_counts() const { return cells_.F64(0); }

  bool supports_fast_snapshot() const override { return true; }

  /// O(1) + O(columns): the copy shares the cells arena copy-on-write.
  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<Grid2dHistogram>(*this);
  }

 protected:
  double EstimateRangeImpl(double a, double b) const override;
  double EstimateRectImpl(double lo0, double hi0, double lo1,
                          double hi1) const override;
  /// Quiesce: rebuild the prefix table now (the only lazy state).
  void ForceRefitImpl() const override { RebuildPrefixIfStale(); }
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state: both arena columns travel verbatim — including the derived
  /// summed-area table, so a restored grid serves its first rect query
  /// without the O(g²) rebuild the portable load pays.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

 private:
  void RebuildPrefixIfStale() const;
  /// Full-axis spans in domain units.
  double hi0() const { return lo0_ + w0_; }
  double hi1() const { return lo1_ + w1_; }

  double lo0_;
  double w0_;  // full axis-0 span (hi0 - lo0), kept bitwise across clones
  double lo1_;
  double w1_;  // full axis-1 span
  int grid_log2_;
  size_t g_ = 0;
  size_t count_ = 0;  // complete observations
  bool have_pending_ = false;
  double pending_ = 0.0;  // raw first coordinate of a half-received observation
  /// Columns: [0] cell counts, [1] inclusive 2-D prefix sums (derived cache,
  /// lazily rebuilt). Copies share the arena copy-on-write; the first
  /// mutation (insert, merge, load, or a prefix rebuild) un-shares it.
  mutable memory::Arena cells_;
  mutable bool prefix_valid_ = false;
  mutable size_t prefix_built_at_count_ = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_GRID2D_SELECTIVITY_HPP_
