#ifndef WDE_SELECTIVITY_SAMPLE_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_SAMPLE_SELECTIVITY_HPP_

#include <vector>

#include "selectivity/selectivity_estimator.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace selectivity {

/// Bernard-Vitter reservoir sampling baseline: keeps a fixed-size uniform
/// sample of the stream and answers range queries by the sample fraction.
///
/// Deliberately NOT mergeable (CloneEmpty returns nullptr): combining two
/// reservoirs into a uniform sample of the union requires drawing fresh
/// randomness proportional to the stream sizes, which would break the
/// sharded engine's fixed-K determinism contract — so the estimator reports
/// unsupported rather than merge with bias.
class ReservoirSampleSelectivity : public SelectivityEstimator {
 public:
  ReservoirSampleSelectivity(size_t capacity, uint64_t seed = 42);

  void Insert(double x) override;
  size_t count() const override { return seen_; }
  std::string name() const override;

  const std::vector<double>& reservoir() const { return reservoir_; }

 protected:
  double EstimateRangeImpl(double a, double b) const override;

 private:
  size_t capacity_;
  size_t seen_ = 0;
  std::vector<double> reservoir_;
  stats::Rng rng_;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_SAMPLE_SELECTIVITY_HPP_
