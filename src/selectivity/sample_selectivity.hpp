#ifndef WDE_SELECTIVITY_SAMPLE_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_SAMPLE_SELECTIVITY_HPP_

#include <vector>

#include "selectivity/selectivity_estimator.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace selectivity {

/// Bernard-Vitter reservoir sampling baseline: keeps a fixed-size uniform
/// sample of the stream and answers range queries by the sample fraction.
///
/// Mergeable with a *distributional* (not pointwise) contract, unlike every
/// other estimator: MergeFrom draws a weighted reservoir union — slot by
/// slot, take from either side with probability proportional to its
/// remaining stream count, without replacement — which is exactly a uniform
/// capacity-sample of the concatenated stream, but not the bitwise sample a
/// sequential reservoir would have drawn. All randomness flows through this
/// estimator's own seeded RNG, so merges are deterministic in (states,
/// seed) and the sharded engine's fixed-K bit-identity across pool widths
/// still holds. When the peer has not yet overflowed its capacity, its
/// reservoir IS its whole sub-stream and the merge degenerates to an exact
/// replay.
class ReservoirSampleSelectivity : public SelectivityEstimator {
 public:
  ReservoirSampleSelectivity(size_t capacity, uint64_t seed = 42);

  void Insert(double x) override;
  size_t count() const override { return seen_; }
  std::string name() const override;

  /// The reservoir declares no domain and keeps raw values, so equality
  /// queries inherit the interface's exact-match lowering (width 0): the
  /// answer is the fraction of the sample exactly equal to x.
  ///
  /// Domain() reports the span of the current sample (quantile answers are
  /// bracketed by the observed data); the interface default [0, 1] applies
  /// while the reservoir is empty.
  RangeQuery Domain() const override;

  /// Clones carry the capacity and the construction seed (fresh RNG stream).
  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Weighted reservoir union (see the class comment); requires identical
  /// capacity.
  Status MergeFrom(const SelectivityEstimator& other) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "reservoir"; }

  const std::vector<double>& reservoir() const { return reservoir_; }

  bool supports_fast_snapshot() const override { return true; }

  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<ReservoirSampleSelectivity>(*this);
  }

 protected:
  double EstimateRangeImpl(double a, double b) const override;
  /// Persists the RNG state too, so a restored reservoir continues the exact
  /// acceptance sequence the saved one would have produced.
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state: RNG + counters in the head, the sample as one F64 column
  /// (restored with a single bulk copy).
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

 private:
  size_t capacity_;
  size_t seen_ = 0;
  std::vector<double> reservoir_;
  stats::Rng rng_;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_SAMPLE_SELECTIVITY_HPP_
