#include "stats/autocovariance.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace wde {
namespace stats {

std::vector<double> Autocovariance(std::span<const double> series, int max_lag) {
  WDE_CHECK(!series.empty());
  WDE_CHECK_GE(max_lag, 0);
  WDE_CHECK_LT(static_cast<size_t>(max_lag), series.size());
  const double m = Mean(series);
  const double n = static_cast<double>(series.size());
  std::vector<double> gamma(static_cast<size_t>(max_lag) + 1, 0.0);
  for (int r = 0; r <= max_lag; ++r) {
    double acc = 0.0;
    for (size_t t = 0; t + static_cast<size_t>(r) < series.size(); ++t) {
      acc += (series[t] - m) * (series[t + static_cast<size_t>(r)] - m);
    }
    gamma[static_cast<size_t>(r)] = acc / n;
  }
  return gamma;
}

std::vector<double> AutocovarianceOfTransform(std::span<const double> series,
                                              const std::function<double(double)>& g,
                                              int max_lag) {
  std::vector<double> transformed(series.size());
  for (size_t i = 0; i < series.size(); ++i) transformed[i] = g(series[i]);
  return Autocovariance(transformed, max_lag);
}

std::vector<double> Autocorrelation(std::span<const double> series, int max_lag) {
  std::vector<double> gamma = Autocovariance(series, max_lag);
  const double g0 = gamma[0];
  WDE_CHECK_GT(std::fabs(g0), 0.0, "degenerate series has zero variance");
  for (double& g : gamma) g /= g0;
  return gamma;
}

}  // namespace stats
}  // namespace wde
