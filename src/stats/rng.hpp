/// \file stats/rng.hpp
/// Entry header of the `stats` module: the deterministic RNG that all
/// experiment randomness must flow through. Invariants: identical seeds give
/// identical streams on every platform/compiler (xoshiro256** + SplitMix64;
/// no std::*_distribution anywhere in the library), and Monte-Carlo
/// replicate r always draws from an RNG forked deterministically from
/// (seed, r) — see harness/monte_carlo.hpp — so paper tables reproduce
/// bit-for-bit at any thread count.
#ifndef WDE_STATS_RNG_HPP_
#define WDE_STATS_RNG_HPP_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wde {
namespace stats {

/// Deterministic, cross-platform random number generator (xoshiro256**
/// seeded by SplitMix64). The standard library's distribution objects are
/// implementation-defined, so all variate generation is implemented here to
/// make experiments exactly reproducible across compilers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64 bits.
  uint64_t NextUint64();

  /// Uniform on [0, 1) with 53-bit resolution.
  double UniformDouble();

  /// Uniform on [a, b).
  double Uniform(double a, double b);

  /// Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via the Marsaglia polar method.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// A correlated standard-normal pair with correlation `rho` in [-1, 1]:
  /// z0 ~ N(0,1), z1 = rho*z0 + sqrt(1-rho^2)*w with w ~ N(0,1) independent.
  /// The 2-D synthetic-data generators build covariant Gaussian mixtures from
  /// this (multidim/synthetic2d.hpp). Draws exactly two Gaussian variates, so
  /// interleaving with Gaussian() stays deterministic.
  void GaussianPair(double rho, double* z0, double* z1);

  /// Bernoulli trial.
  bool Bernoulli(double p);

  /// Exponential with rate `lambda`.
  double Exponential(double lambda);

  /// Derives an independent generator for substream `index` (e.g. one per
  /// Monte-Carlo replicate). Deterministic in (seed, index).
  Rng Fork(uint64_t index) const;

  /// The seed this generator was constructed with (also the seed Fork mixes).
  uint64_t seed() const { return seed_; }

  /// Complete generator state, exposed so snapshot code can persist an RNG
  /// mid-stream and resume it bit-exactly (see io/serialize.hpp — the stats
  /// module itself stays independent of the wire format).
  struct State {
    uint64_t state[4] = {0, 0, 0, 0};
    uint64_t seed = 0;
    bool have_spare_gaussian = false;
    double spare_gaussian = 0.0;
  };

  State SaveState() const;
  /// Restores a previously saved state; the draw sequence continues exactly
  /// where SaveState left it.
  void RestoreState(const State& state);

  // UniformRandomBitGenerator interface, so the engine composes with
  // std::shuffle and friends.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return NextUint64(); }

 private:
  uint64_t state_[4];
  uint64_t seed_;
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// n iid U[0,1) draws.
std::vector<double> UniformSample(Rng& rng, size_t n);

}  // namespace stats
}  // namespace wde

#endif  // WDE_STATS_RNG_HPP_
