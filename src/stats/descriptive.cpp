#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace stats {

double Mean(std::span<const double> xs) {
  WDE_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  WDE_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  WDE_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double QuantileSorted(std::span<const double> sorted, double p,
                      QuantileMethod method) {
  WDE_CHECK(!sorted.empty());
  WDE_CHECK(p >= 0.0 && p <= 1.0, "quantile level must be in [0,1]");
  const double n = static_cast<double>(sorted.size());
  double h;  // 1-based fractional order statistic index
  switch (method) {
    case QuantileMethod::kType7:
      h = p * (n - 1.0) + 1.0;
      break;
    case QuantileMethod::kMatlab:
      h = p * n + 0.5;
      break;
    default:
      h = p * (n - 1.0) + 1.0;
  }
  h = std::clamp(h, 1.0, n);
  const auto lo = static_cast<size_t>(std::floor(h)) - 1;
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - std::floor(h);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Quantile(std::span<const double> xs, double p, QuantileMethod method) {
  WDE_CHECK(!xs.empty());
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return QuantileSorted(sorted, p, method);
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double Iqr(std::span<const double> xs, QuantileMethod method) {
  return Quantile(xs, 0.75, method) - Quantile(xs, 0.25, method);
}

double IqrSorted(std::span<const double> sorted, QuantileMethod method) {
  return QuantileSorted(sorted, 0.75, method) - QuantileSorted(sorted, 0.25, method);
}

}  // namespace stats
}  // namespace wde
