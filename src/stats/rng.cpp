#include "stats/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace stats {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double a, double b) { return a + (b - a) * UniformDouble(); }

uint64_t Rng::UniformInt(uint64_t n) {
  WDE_CHECK_GT(n, 0ULL);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~0ULL) - (~0ULL) % n;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return draw % n;
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  have_spare_gaussian_ = true;
  return u * factor;
}

void Rng::GaussianPair(double rho, double* z0, double* z1) {
  WDE_CHECK(rho >= -1.0 && rho <= 1.0, "correlation must be in [-1, 1]");
  const double a = Gaussian();
  const double b = Gaussian();
  *z0 = a;
  *z1 = rho * a + std::sqrt(1.0 - rho * rho) * b;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double lambda) {
  WDE_CHECK_GT(lambda, 0.0);
  return -std::log(1.0 - UniformDouble()) / lambda;
}

Rng Rng::Fork(uint64_t index) const {
  // Mix seed and index through SplitMix64 so substreams are decorrelated.
  uint64_t s = seed_ ^ (0xD1B54A32D192ED03ULL * (index + 1));
  const uint64_t mixed = SplitMix64(s);
  return Rng(mixed);
}

Rng::State Rng::SaveState() const {
  State state;
  for (size_t i = 0; i < 4; ++i) state.state[i] = state_[i];
  state.seed = seed_;
  state.have_spare_gaussian = have_spare_gaussian_;
  state.spare_gaussian = spare_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (size_t i = 0; i < 4; ++i) state_[i] = state.state[i];
  seed_ = state.seed;
  have_spare_gaussian_ = state.have_spare_gaussian;
  spare_gaussian_ = state.spare_gaussian;
}

std::vector<double> UniformSample(Rng& rng, size_t n) {
  std::vector<double> out(n);
  for (double& x : out) x = rng.UniformDouble();
  return out;
}

}  // namespace stats
}  // namespace wde
