#ifndef WDE_STATS_AUTOCOVARIANCE_HPP_
#define WDE_STATS_AUTOCOVARIANCE_HPP_

#include <functional>
#include <span>
#include <vector>

namespace wde {
namespace stats {

/// Empirical autocovariances gamma(r) = Cov(X_0, X_r) for r = 0..max_lag,
/// using the biased (1/n) normalization standard in time-series analysis.
std::vector<double> Autocovariance(std::span<const double> series, int max_lag);

/// Autocovariances of the transformed series g(X_t). This is the empirical
/// counterpart of the covariance terms bounded by Assumption (D): the decay
/// of |Cov(g(X_0), g(X_r))| in r.
std::vector<double> AutocovarianceOfTransform(std::span<const double> series,
                                              const std::function<double(double)>& g,
                                              int max_lag);

/// Autocorrelations gamma(r)/gamma(0).
std::vector<double> Autocorrelation(std::span<const double> series, int max_lag);

}  // namespace stats
}  // namespace wde

#endif  // WDE_STATS_AUTOCOVARIANCE_HPP_
