#ifndef WDE_STATS_DESCRIPTIVE_HPP_
#define WDE_STATS_DESCRIPTIVE_HPP_

#include <span>
#include <vector>

namespace wde {
namespace stats {

double Mean(std::span<const double> xs);

/// Unbiased sample variance (divides by n-1). Returns 0 for n < 2.
double Variance(std::span<const double> xs);

double StdDev(std::span<const double> xs);

double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Quantile conventions. `kType7` is the R default (linear interpolation of
/// order statistics at p(n-1)+1); `kMatlab` matches MATLAB's `quantile`
/// (midpoints, R type 5), which the paper's rule-of-thumb bandwidth uses.
enum class QuantileMethod { kType7, kMatlab };

/// p-th sample quantile, p in [0, 1]. Copies and sorts internally.
double Quantile(std::span<const double> xs, double p,
                QuantileMethod method = QuantileMethod::kType7);

/// Quantile over an already ascending-sorted span — bitwise-identical to
/// Quantile() on the same multiset (same interpolation arithmetic, no copy,
/// no sort). Callers that maintain a sorted buffer incrementally use this to
/// skip the O(n log n) copy+sort per evaluation.
double QuantileSorted(std::span<const double> sorted, double p,
                      QuantileMethod method = QuantileMethod::kType7);

double Median(std::span<const double> xs);

/// Interquartile range q3 - q1 under the given convention.
double Iqr(std::span<const double> xs, QuantileMethod method = QuantileMethod::kMatlab);

/// Iqr over an already-sorted span; bitwise-identical to Iqr().
double IqrSorted(std::span<const double> sorted,
                 QuantileMethod method = QuantileMethod::kMatlab);

}  // namespace stats
}  // namespace wde

#endif  // WDE_STATS_DESCRIPTIVE_HPP_
