#ifndef WDE_STATS_EMPIRICAL_HPP_
#define WDE_STATS_EMPIRICAL_HPP_

#include <functional>
#include <span>
#include <vector>

namespace wde {
namespace stats {

/// Empirical cumulative distribution function of a sample.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> sample);

  /// Fraction of sample points <= x.
  double Evaluate(double x) const;

  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_sample() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// One-sample Kolmogorov-Smirnov statistic sup_x |F_n(x) - F(x)| against a
/// reference CDF.
double KolmogorovSmirnovDistance(std::span<const double> sample,
                                 const std::function<double(double)>& cdf);

/// Two-sample Kolmogorov-Smirnov statistic.
double KolmogorovSmirnovDistance(std::span<const double> a,
                                 std::span<const double> b);

}  // namespace stats
}  // namespace wde

#endif  // WDE_STATS_EMPIRICAL_HPP_
