#include "stats/block_bootstrap.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace stats {

size_t DefaultBlockLength(size_t n) {
  WDE_CHECK_GT(n, 0u);
  return static_cast<size_t>(
      std::ceil(std::pow(static_cast<double>(n), 1.0 / 3.0)));
}

std::vector<double> CircularBlockBootstrapResample(std::span<const double> data,
                                                   size_t block_length, Rng& rng) {
  WDE_CHECK(!data.empty());
  WDE_CHECK_GT(block_length, 0u);
  const size_t n = data.size();
  std::vector<double> resample;
  resample.reserve(n + block_length);
  while (resample.size() < n) {
    const size_t start = static_cast<size_t>(rng.UniformInt(n));
    for (size_t j = 0; j < block_length && resample.size() < n; ++j) {
      resample.push_back(data[(start + j) % n]);
    }
  }
  return resample;
}

}  // namespace stats
}  // namespace wde
