#ifndef WDE_STATS_LOSS_HPP_
#define WDE_STATS_LOSS_HPP_

#include <span>

namespace wde {
namespace stats {

/// Integrated squared error between two functions sampled on the same uniform
/// grid with spacing dx (trapezoid rule).
double IntegratedSquaredError(std::span<const double> estimate,
                              std::span<const double> truth, double dx);

/// ∫ |estimate - truth|^p dx on a shared uniform grid. This is the p-th power
/// of the L^p distance (the paper's risks are E||g-f||_p^p, aggregated by the
/// Monte-Carlo harness before taking the 1/p-th root).
double LpErrorPow(std::span<const double> estimate, std::span<const double> truth,
                  double dx, double p);

/// Sup-norm distance on the grid.
double SupError(std::span<const double> estimate, std::span<const double> truth);

}  // namespace stats
}  // namespace wde

#endif  // WDE_STATS_LOSS_HPP_
