#ifndef WDE_STATS_BLOCK_BOOTSTRAP_HPP_
#define WDE_STATS_BLOCK_BOOTSTRAP_HPP_

#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace wde {
namespace stats {

/// Circular block bootstrap resample (Politis–Romano): draws ⌈n/b⌉ blocks of
/// length `block_length` with uniformly random (wrap-around) start positions
/// and concatenates them, truncated to the original length. Preserves the
/// within-block dependence structure — the right resampling scheme for the
/// weakly dependent series this library targets; `block_length = 1` recovers
/// the classical iid bootstrap.
std::vector<double> CircularBlockBootstrapResample(std::span<const double> data,
                                                   size_t block_length, Rng& rng);

/// The usual block-length rule of thumb b = ⌈n^{1/3}⌉.
size_t DefaultBlockLength(size_t n);

}  // namespace stats
}  // namespace wde

#endif  // WDE_STATS_BLOCK_BOOTSTRAP_HPP_
