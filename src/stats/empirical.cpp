#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace stats {

Ecdf::Ecdf(std::span<const double> sample) : sorted_(sample.begin(), sample.end()) {
  WDE_CHECK(!sorted_.empty(), "ECDF of empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::Evaluate(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double KolmogorovSmirnovDistance(std::span<const double> sample,
                                 const std::function<double(double)>& cdf) {
  WDE_CHECK(!sample.empty());
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max(d, std::max(std::fabs(f - lo), std::fabs(hi - f)));
  }
  return d;
}

double KolmogorovSmirnovDistance(std::span<const double> a,
                                 std::span<const double> b) {
  WDE_CHECK(!a.empty() && !b.empty());
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  size_t ia = 0;
  size_t ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    const double fa = static_cast<double>(ia) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(ib) / static_cast<double>(sb.size());
    d = std::max(d, std::fabs(fa - fb));
  }
  return d;
}

}  // namespace stats
}  // namespace wde
