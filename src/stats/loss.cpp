#include "stats/loss.hpp"

#include <cmath>
#include <vector>

#include "numerics/integration.hpp"
#include "util/check.hpp"

namespace wde {
namespace stats {

double IntegratedSquaredError(std::span<const double> estimate,
                              std::span<const double> truth, double dx) {
  return LpErrorPow(estimate, truth, dx, 2.0);
}

double LpErrorPow(std::span<const double> estimate, std::span<const double> truth,
                  double dx, double p) {
  WDE_CHECK_EQ(estimate.size(), truth.size(), "grids must match");
  WDE_CHECK_GE(p, 1.0);
  std::vector<double> diff(estimate.size());
  for (size_t i = 0; i < estimate.size(); ++i) {
    diff[i] = std::pow(std::fabs(estimate[i] - truth[i]), p);
  }
  return numerics::TrapezoidIntegral(diff, dx);
}

double SupError(std::span<const double> estimate, std::span<const double> truth) {
  WDE_CHECK_EQ(estimate.size(), truth.size(), "grids must match");
  double m = 0.0;
  for (size_t i = 0; i < estimate.size(); ++i) {
    m = std::max(m, std::fabs(estimate[i] - truth[i]));
  }
  return m;
}

}  // namespace stats
}  // namespace wde
