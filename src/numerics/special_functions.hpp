#ifndef WDE_NUMERICS_SPECIAL_FUNCTIONS_HPP_
#define WDE_NUMERICS_SPECIAL_FUNCTIONS_HPP_

#include <cstdint>

namespace wde {
namespace numerics {

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal cumulative distribution function.
double NormalCdf(double x);

/// Inverse of the standard normal CDF. Uses Acklam's rational approximation
/// refined by one Halley step, accurate to ~1e-15 on (0,1).
/// Requires 0 < p < 1 (checked).
double NormalQuantile(double p);

/// Binomial coefficient C(n, k) as a double (exact for the small arguments
/// used by filter construction).
double BinomialCoefficient(int n, int k);

/// Factorial as a double.
double Factorial(int n);

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_SPECIAL_FUNCTIONS_HPP_
