#ifndef WDE_NUMERICS_POLYNOMIAL_HPP_
#define WDE_NUMERICS_POLYNOMIAL_HPP_

#include <complex>
#include <vector>

#include "util/result.hpp"

namespace wde {
namespace numerics {

using Complex = std::complex<double>;

/// Polynomials are coefficient vectors in ascending degree order:
/// p(z) = c[0] + c[1] z + ... + c[d] z^d.

/// Evaluates a complex-coefficient polynomial by Horner's rule.
Complex EvaluatePolynomial(const std::vector<Complex>& coeffs, Complex z);

/// Evaluates a real-coefficient polynomial at a real point.
double EvaluatePolynomial(const std::vector<double>& coeffs, double x);

/// Product of two polynomials (complex coefficients).
std::vector<Complex> MultiplyPolynomials(const std::vector<Complex>& a,
                                         const std::vector<Complex>& b);

/// Product of two polynomials (real coefficients).
std::vector<double> MultiplyPolynomials(const std::vector<double>& a,
                                        const std::vector<double>& b);

/// All complex roots of a polynomial via the Durand-Kerner (Weierstrass)
/// iteration. Intended for the modest degrees used by filter construction
/// (degree <= ~20). Fails if the iteration does not converge.
Result<std::vector<Complex>> FindPolynomialRoots(std::vector<Complex> coeffs,
                                                 double tolerance = 1e-13,
                                                 int max_iterations = 2000);

/// Convenience overload for real coefficients.
Result<std::vector<Complex>> FindPolynomialRoots(const std::vector<double>& coeffs,
                                                 double tolerance = 1e-13,
                                                 int max_iterations = 2000);

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_POLYNOMIAL_HPP_
