#ifndef WDE_NUMERICS_MATRIX_HPP_
#define WDE_NUMERICS_MATRIX_HPP_

#include <cstddef>
#include <vector>

#include "util/result.hpp"

namespace wde {
namespace numerics {

/// Small dense row-major matrix of doubles. Sized for the library's needs
/// (refinement/transfer matrices of wavelet filters, ~20x20); not a general
/// BLAS replacement.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& at(size_t r, size_t c) {
    WDE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double at(size_t r, size_t c) const {
    WDE_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix operator*(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;

  /// Matrix-vector product.
  std::vector<double> Apply(const std::vector<double>& v) const;

  /// Max-abs entry, used for convergence checks.
  double MaxAbs() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Fails with InvalidArgument on shape mismatch and FailedPrecondition on a
/// (numerically) singular system.
Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b);

/// Finds v with A v = v and sum(v) = 1 (the eigenvector for eigenvalue 1,
/// normalized to unit coefficient sum). Used for scaling-function values at
/// integers. Fails if 1 is not an eigenvalue (within tolerance).
Result<std::vector<double>> UnitEigenvector(const Matrix& a);

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_MATRIX_HPP_
