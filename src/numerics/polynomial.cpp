#include "numerics/polynomial.hpp"

#include <cmath>

namespace wde {
namespace numerics {

Complex EvaluatePolynomial(const std::vector<Complex>& coeffs, Complex z) {
  Complex acc(0.0, 0.0);
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * z + coeffs[i];
  return acc;
}

double EvaluatePolynomial(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<Complex> MultiplyPolynomials(const std::vector<Complex>& a,
                                         const std::vector<Complex>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<Complex> out(a.size() + b.size() - 1, Complex(0.0, 0.0));
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

std::vector<double> MultiplyPolynomials(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  }
  return out;
}

Result<std::vector<Complex>> FindPolynomialRoots(std::vector<Complex> coeffs,
                                                 double tolerance,
                                                 int max_iterations) {
  // Trim (numerically) zero leading coefficients.
  while (coeffs.size() > 1 && std::abs(coeffs.back()) < 1e-300) coeffs.pop_back();
  if (coeffs.size() <= 1) return std::vector<Complex>{};
  const size_t degree = coeffs.size() - 1;
  // Normalize to a monic polynomial.
  const Complex lead = coeffs.back();
  for (Complex& c : coeffs) c /= lead;

  // Standard Durand-Kerner initialization: powers of a point that is neither
  // real nor on the unit circle.
  std::vector<Complex> roots(degree);
  const Complex seed(0.4, 0.9);
  Complex acc(1.0, 0.0);
  for (size_t i = 0; i < degree; ++i) {
    acc *= seed;
    roots[i] = acc;
  }

  for (int iter = 0; iter < max_iterations; ++iter) {
    double max_update = 0.0;
    for (size_t i = 0; i < degree; ++i) {
      Complex denom(1.0, 0.0);
      for (size_t j = 0; j < degree; ++j) {
        if (j == i) continue;
        denom *= roots[i] - roots[j];
      }
      if (std::abs(denom) < 1e-300) {
        // Perturb coincident iterates and retry next sweep.
        roots[i] += Complex(1e-8, 1e-8);
        max_update = 1.0;
        continue;
      }
      const Complex delta = EvaluatePolynomial(coeffs, roots[i]) / denom;
      roots[i] -= delta;
      max_update = std::max(max_update, std::abs(delta));
    }
    if (max_update < tolerance) return roots;
  }
  return Status::FailedPrecondition("Durand-Kerner iteration did not converge");
}

Result<std::vector<Complex>> FindPolynomialRoots(const std::vector<double>& coeffs,
                                                 double tolerance,
                                                 int max_iterations) {
  std::vector<Complex> c(coeffs.size());
  for (size_t i = 0; i < coeffs.size(); ++i) c[i] = Complex(coeffs[i], 0.0);
  return FindPolynomialRoots(std::move(c), tolerance, max_iterations);
}

}  // namespace numerics
}  // namespace wde
