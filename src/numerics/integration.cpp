#include "numerics/integration.hpp"

#include "util/check.hpp"

namespace wde {
namespace numerics {

double TrapezoidIntegral(std::span<const double> values, double dx) {
  if (values.size() < 2) return 0.0;
  double acc = 0.5 * (values.front() + values.back());
  for (size_t i = 1; i + 1 < values.size(); ++i) acc += values[i];
  return acc * dx;
}

double SimpsonIntegral(std::span<const double> values, double dx) {
  const size_t n = values.size();
  if (n < 3 || n % 2 == 0) return TrapezoidIntegral(values, dx);
  double odd = 0.0;
  double even = 0.0;
  for (size_t i = 1; i + 1 < n; i += 2) odd += values[i];
  for (size_t i = 2; i + 1 < n; i += 2) even += values[i];
  return dx / 3.0 * (values.front() + values.back() + 4.0 * odd + 2.0 * even);
}

double IntegrateFunction(const std::function<double(double)>& f, double a, double b,
                         int intervals) {
  WDE_CHECK_GT(intervals, 0);
  if (intervals % 2 != 0) ++intervals;
  const double h = (b - a) / intervals;
  double acc = f(a) + f(b);
  for (int i = 1; i < intervals; ++i) {
    acc += f(a + i * h) * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

std::vector<double> CumulativeTrapezoid(std::span<const double> values, double dx) {
  std::vector<double> out(values.size(), 0.0);
  for (size_t i = 1; i < values.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * dx * (values[i - 1] + values[i]);
  }
  return out;
}

}  // namespace numerics
}  // namespace wde
