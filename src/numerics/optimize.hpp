#ifndef WDE_NUMERICS_OPTIMIZE_HPP_
#define WDE_NUMERICS_OPTIMIZE_HPP_

#include <functional>

namespace wde {
namespace numerics {

/// Minimizes a unimodal scalar function on [a, b] by golden-section search.
/// Returns the abscissa of the minimum.
double GoldenSectionMinimize(const std::function<double(double)>& f, double a,
                             double b, double tolerance = 1e-8,
                             int max_iterations = 200);

/// Coarse-to-fine minimizer for possibly multimodal objectives: evaluates f on
/// `grid_points` equally spaced points in [a, b], then refines around the best
/// point with golden-section search.
double GridThenGoldenMinimize(const std::function<double(double)>& f, double a,
                              double b, int grid_points = 32,
                              double tolerance = 1e-8);

/// Solves f(x) = target for monotone non-decreasing f on [a, b] by bisection.
/// Used to invert CDFs. Returns the midpoint of the final bracket.
double BisectMonotone(const std::function<double(double)>& f, double target,
                      double a, double b, double tolerance = 1e-12,
                      int max_iterations = 200);

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_OPTIMIZE_HPP_
