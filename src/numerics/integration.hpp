/// \file numerics/integration.hpp
/// Entry header of the `numerics` module: quadrature over sampled grids and
/// callables. These rules back every ∫f̂, ISE/MISE (paper §5.3) and L^p risk
/// computation in the library. Invariants: integrands are assumed finite on
/// the closed interval; all rules are deterministic (no adaptive subdivision)
/// so results are bit-reproducible across runs and platforms.
#ifndef WDE_NUMERICS_INTEGRATION_HPP_
#define WDE_NUMERICS_INTEGRATION_HPP_

#include <functional>
#include <span>
#include <vector>

namespace wde {
namespace numerics {

/// Trapezoid rule over equally spaced samples with spacing `dx`.
double TrapezoidIntegral(std::span<const double> values, double dx);

/// Composite Simpson rule over equally spaced samples (values.size() must be
/// odd and >= 3); falls back to the trapezoid rule otherwise.
double SimpsonIntegral(std::span<const double> values, double dx);

/// Integrates `f` over [a, b] with the composite Simpson rule on `intervals`
/// subintervals (rounded up to an even count).
double IntegrateFunction(const std::function<double(double)>& f, double a, double b,
                         int intervals = 1024);

/// Running cumulative trapezoid integral: out[i] = integral of values[0..i].
/// out[0] = 0.
std::vector<double> CumulativeTrapezoid(std::span<const double> values, double dx);

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_INTEGRATION_HPP_
