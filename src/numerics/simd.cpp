#include "numerics/simd.hpp"

#include "util/check.hpp"

namespace wde {
namespace numerics {

double PrefixSumExclusiveSequential(std::span<const double> in,
                                    std::span<double> out) {
  WDE_CHECK_EQ(in.size(), out.size(), "prefix-sum spans must match");
  double acc = 0.0;
  for (size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  return acc;
}

double PrefixSumExclusiveBlocked(std::span<const double> in,
                                 std::span<double> out) {
  WDE_CHECK_EQ(in.size(), out.size(), "prefix-sum spans must match");
  const size_t n = in.size();
  // One cache line of doubles per block: the block reduction below runs on
  // independent lanes instead of one latency-bound chain, and the per-block
  // scan chains are short enough to overlap across blocks.
  constexpr size_t kBlock = 8;
  const double* x = in.data();
  double* p = out.data();
  double offset = 0.0;
  size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    // Within-block exclusive scan from the running offset. Unrolled fixed
    // width: each p[i + m] is its own short dependency chain off `offset`,
    // so the compiler can schedule the adds in parallel.
    double s0 = x[i];
    double s1 = s0 + x[i + 1];
    double s2 = s1 + x[i + 2];
    double s3 = s2 + x[i + 3];
    double s4 = s3 + x[i + 4];
    double s5 = s4 + x[i + 5];
    double s6 = s5 + x[i + 6];
    double s7 = s6 + x[i + 7];
    p[i] = offset;
    p[i + 1] = offset + s0;
    p[i + 2] = offset + s1;
    p[i + 3] = offset + s2;
    p[i + 4] = offset + s3;
    p[i + 5] = offset + s4;
    p[i + 6] = offset + s5;
    p[i + 7] = offset + s6;
    offset += s7;
  }
  for (; i < n; ++i) {
    p[i] = offset;
    offset += x[i];
  }
  return offset;
}

}  // namespace numerics
}  // namespace wde
