#include "numerics/optimize.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace numerics {

double GoldenSectionMinimize(const std::function<double(double)>& f, double a,
                             double b, double tolerance, int max_iterations) {
  WDE_CHECK_LT(a, b);
  const double inv_phi = 0.6180339887498949;  // (sqrt(5)-1)/2
  double x1 = b - inv_phi * (b - a);
  double x2 = a + inv_phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < max_iterations && (b - a) > tolerance; ++i) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - inv_phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + inv_phi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

double GridThenGoldenMinimize(const std::function<double(double)>& f, double a,
                              double b, int grid_points, double tolerance) {
  WDE_CHECK_GE(grid_points, 3);
  const double step = (b - a) / (grid_points - 1);
  double best_x = a;
  double best_f = f(a);
  for (int i = 1; i < grid_points; ++i) {
    const double x = a + i * step;
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  const double lo = std::max(a, best_x - step);
  const double hi = std::min(b, best_x + step);
  return GoldenSectionMinimize(f, lo, hi, tolerance);
}

double BisectMonotone(const std::function<double(double)>& f, double target,
                      double a, double b, double tolerance, int max_iterations) {
  WDE_CHECK_LE(a, b);
  double lo = a;
  double hi = b;
  for (int i = 0; i < max_iterations && (hi - lo) > tolerance; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace numerics
}  // namespace wde
