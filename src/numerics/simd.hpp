/// \file numerics/simd.hpp
/// SIMD annotation + vector-friendly exact kernels shared by the hot paths.
///
/// `WDE_SIMD_LOOP` expands to `#pragma omp simd` when the compiler honors it
/// (GCC/Clang with -fopenmp or -fopenmp-simd; the build adds -fopenmp-simd,
/// which activates the pragma WITHOUT an OpenMP runtime dependency) and to
/// nothing otherwise, so annotated kernels compile everywhere. The contract
/// for every annotated loop in this codebase: iterations are independent and
/// elementwise — the pragma may interleave *iterations* but never
/// re-associates the arithmetic *within* one element, so annotated kernels
/// stay bitwise-identical to their scalar per-element counterparts.
/// Reductions (dot products, kernel sums) are deliberately NOT annotated
/// when a bitwise contract covers them: a vectorized reduction re-associates
/// the sum. Where re-association is provably exact (integer-valued doubles
/// below 2^53, e.g. histogram bucket counts) the blocked kernels here exploit
/// it and document the precondition.
#ifndef WDE_NUMERICS_SIMD_HPP_
#define WDE_NUMERICS_SIMD_HPP_

#include <cstddef>
#include <span>

#if defined(_OPENMP) || defined(_OPENMP_SIMD)
#define WDE_SIMD_LOOP _Pragma("omp simd")
#elif defined(__clang__) || defined(__GNUC__)
// GCC/Clang accept the pragma unconditionally under -fopenmp-simd; when the
// flag is absent they warn-and-ignore, so gate on it having had an effect.
// -fopenmp-simd defines _OPENMP_SIMD on neither compiler, hence this probe:
// GCC defines _OPENMP only under -fopenmp; use the pragma anyway — both
// compilers silently ignore unknown omp pragmas without -Werror=unknown-pragmas.
#define WDE_SIMD_LOOP _Pragma("omp simd")
#else
#define WDE_SIMD_LOOP
#endif

namespace wde {
namespace numerics {

/// Exclusive prefix sum, reference form: out[i] = in[0] + ... + in[i-1]
/// accumulated left to right in one dependent chain. Returns the total sum.
double PrefixSumExclusiveSequential(std::span<const double> in,
                                    std::span<double> out);

/// Exclusive prefix sum, blocked/vectorizable form: per-block totals are
/// reduced with a SIMD-friendly accumulator, block offsets are chained, and
/// the within-block scan runs on independent short chains. ~one fused pass
/// instead of one latency-bound add chain over the whole array.
///
/// Bitwise contract: for integer-valued inputs whose running sums stay below
/// 2^53 (histogram bucket counts — the production use), every partial sum is
/// exactly representable under ANY association, so the result is
/// bit-identical to PrefixSumExclusiveSequential (asserted by numerics_test
/// and the perf_kernels --check gate). For general doubles the blocked
/// association is the definition of the table being built; callers needing
/// sequential-association semantics use the reference form.
double PrefixSumExclusiveBlocked(std::span<const double> in,
                                 std::span<double> out);

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_SIMD_HPP_
