#ifndef WDE_NUMERICS_INTERPOLATION_HPP_
#define WDE_NUMERICS_INTERPOLATION_HPP_

#include <vector>

namespace wde {
namespace numerics {

/// Piecewise-linear interpolant over a uniform grid x0, x0+dx, ...
/// Evaluates to 0 outside the grid span (matching compactly supported
/// functions, the main use case).
class UniformGridInterpolator {
 public:
  UniformGridInterpolator() : x0_(0.0), dx_(1.0) {}
  UniformGridInterpolator(double x0, double dx, std::vector<double> values);

  double x0() const { return x0_; }
  double dx() const { return dx_; }
  const std::vector<double>& values() const { return values_; }
  /// Right end of the grid span.
  double x1() const;

  double Evaluate(double x) const;

 private:
  double x0_;
  double dx_;
  std::vector<double> values_;
};

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_INTERPOLATION_HPP_
