#ifndef WDE_NUMERICS_INTERPOLATION_HPP_
#define WDE_NUMERICS_INTERPOLATION_HPP_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace wde {
namespace numerics {

/// Piecewise-linear interpolant over a uniform grid x0, x0+dx, ...
/// Evaluates to 0 outside the grid span (matching compactly supported
/// functions, the main use case).
///
/// The grid values are immutable and either owned (shared between copies) or
/// *borrowed* from external storage — a snapshot-restored table viewing an
/// arena column zero-copy — with a keepalive handle anchoring the bytes.
/// Copies are cheap either way and never dangle.
class UniformGridInterpolator {
 public:
  UniformGridInterpolator() : x0_(0.0), dx_(1.0) {}
  UniformGridInterpolator(double x0, double dx, std::vector<double> values);
  /// Borrows `values` without copying; `keepalive` must anchor them for the
  /// interpolator's lifetime (and that of all copies).
  UniformGridInterpolator(double x0, double dx, std::span<const double> values,
                          std::shared_ptr<const void> keepalive);

  double x0() const { return x0_; }
  double dx() const { return dx_; }
  std::span<const double> values() const { return view_; }
  /// Right end of the grid span.
  double x1() const;

  double Evaluate(double x) const {
    return EvaluateOn(x0_, dx_, view_.data(), view_.size(), x);
  }

  /// Raw-array core of Evaluate. Batch loops hoist the member loads by
  /// keeping (x0, dx, values, n) in locals and calling this per point; the
  /// arithmetic is the scalar path's, so results are bit-identical.
  static double EvaluateOn(double x0, double dx, const double* values, size_t n,
                           double x) {
    const double t = (x - x0) / dx;
    if (t < 0.0 || t > static_cast<double>(n - 1)) return 0.0;
    const auto idx = static_cast<size_t>(t);
    if (idx + 1 >= n) return values[n - 1];
    const double frac = t - static_cast<double>(idx);
    return values[idx] * (1.0 - frac) + values[idx + 1] * frac;
  }

  /// out[i] = Evaluate(xs[i]) with the grid parameters hoisted out of the
  /// loop; bit-identical to calling Evaluate per point.
  void EvaluateMany(std::span<const double> xs, std::span<double> out) const;

 private:
  double x0_;
  double dx_;
  /// Owned mode: the table, shared so default copy/move keep `view_` valid.
  std::shared_ptr<const std::vector<double>> owned_;
  /// Always the authoritative view (into `owned_` or the borrowed storage).
  std::span<const double> view_;
  /// Borrowed mode: anchors the external storage behind `view_`.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace numerics
}  // namespace wde

#endif  // WDE_NUMERICS_INTERPOLATION_HPP_
