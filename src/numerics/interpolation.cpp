#include "numerics/interpolation.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace numerics {

UniformGridInterpolator::UniformGridInterpolator(double x0, double dx,
                                                 std::vector<double> values)
    : x0_(x0), dx_(dx), values_(std::move(values)) {
  WDE_CHECK_GT(dx_, 0.0, "grid spacing must be positive");
  WDE_CHECK_GE(values_.size(), 2u, "need at least two grid points");
}

double UniformGridInterpolator::x1() const {
  return x0_ + dx_ * static_cast<double>(values_.size() - 1);
}

void UniformGridInterpolator::EvaluateMany(std::span<const double> xs,
                                           std::span<double> out) const {
  WDE_CHECK_EQ(xs.size(), out.size(), "EvaluateMany spans must match");
  const double x0 = x0_;
  const double dx = dx_;
  const double* values = values_.data();
  const size_t n = values_.size();
  for (size_t i = 0; i < xs.size(); ++i) {
    out[i] = EvaluateOn(x0, dx, values, n, xs[i]);
  }
}

}  // namespace numerics
}  // namespace wde
