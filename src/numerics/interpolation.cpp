#include "numerics/interpolation.hpp"

#include <cmath>

#include "numerics/simd.hpp"
#include "util/check.hpp"

namespace wde {
namespace numerics {

UniformGridInterpolator::UniformGridInterpolator(double x0, double dx,
                                                 std::vector<double> values)
    : x0_(x0),
      dx_(dx),
      owned_(std::make_shared<const std::vector<double>>(std::move(values))) {
  view_ = *owned_;
  WDE_CHECK_GT(dx_, 0.0, "grid spacing must be positive");
  WDE_CHECK_GE(view_.size(), 2u, "need at least two grid points");
}

UniformGridInterpolator::UniformGridInterpolator(
    double x0, double dx, std::span<const double> values,
    std::shared_ptr<const void> keepalive)
    : x0_(x0), dx_(dx), view_(values), keepalive_(std::move(keepalive)) {
  WDE_CHECK_GT(dx_, 0.0, "grid spacing must be positive");
  WDE_CHECK_GE(view_.size(), 2u, "need at least two grid points");
}

double UniformGridInterpolator::x1() const {
  return x0_ + dx_ * static_cast<double>(view_.size() - 1);
}

void UniformGridInterpolator::EvaluateMany(std::span<const double> xs,
                                           std::span<double> out) const {
  WDE_CHECK_EQ(xs.size(), out.size(), "EvaluateMany spans must match");
  const double x0 = x0_;
  const double dx = dx_;
  const double* values = view_.data();
  const size_t n = view_.size();
  const double t_max = static_cast<double>(n - 1);
  const size_t count = xs.size();
  // Branch-free rewrite of EvaluateOn: out-of-span lanes index a clamped
  // (valid, discarded) cell and are overridden by selects that use exactly
  // the comparisons EvaluateOn branches on, so every lane stays bit-identical
  // to the scalar path while the loop vectorizes.
  WDE_SIMD_LOOP
  for (size_t i = 0; i < count; ++i) {
    const double t = (xs[i] - x0) / dx;
    const bool inside = t >= 0.0 && t <= t_max;
    const double tc = inside ? t : 0.0;
    size_t idx = static_cast<size_t>(tc);
    idx = idx < n - 2 ? idx : n - 2;
    const double frac = tc - static_cast<double>(idx);
    const double v = values[idx] * (1.0 - frac) + values[idx + 1] * frac;
    out[i] = !inside ? 0.0 : (t >= t_max ? values[n - 1] : v);
  }
}

}  // namespace numerics
}  // namespace wde
