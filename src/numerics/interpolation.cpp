#include "numerics/interpolation.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace numerics {

UniformGridInterpolator::UniformGridInterpolator(double x0, double dx,
                                                 std::vector<double> values)
    : x0_(x0), dx_(dx), values_(std::move(values)) {
  WDE_CHECK_GT(dx_, 0.0, "grid spacing must be positive");
  WDE_CHECK_GE(values_.size(), 2u, "need at least two grid points");
}

double UniformGridInterpolator::x1() const {
  return x0_ + dx_ * static_cast<double>(values_.size() - 1);
}

double UniformGridInterpolator::Evaluate(double x) const {
  const double t = (x - x0_) / dx_;
  if (t < 0.0 || t > static_cast<double>(values_.size() - 1)) return 0.0;
  const auto idx = static_cast<size_t>(t);
  if (idx + 1 >= values_.size()) return values_.back();
  const double frac = t - static_cast<double>(idx);
  return values_[idx] * (1.0 - frac) + values_[idx + 1] * frac;
}

}  // namespace numerics
}  // namespace wde
