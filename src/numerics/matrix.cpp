#include "numerics/matrix.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace wde {
namespace numerics {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator*(const Matrix& other) const {
  WDE_CHECK_EQ(cols_, other.rows_, "matrix product shape mismatch");
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = at(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out.at(i, j) += aik * other.at(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  WDE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  WDE_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  WDE_CHECK_EQ(cols_, v.size(), "matrix-vector shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += at(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

Result<std::vector<double>> SolveLinearSystem(Matrix a, std::vector<double> b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem requires square A and matching b");
  }
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a.at(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double cand = std::fabs(a.at(r, col));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    if (best < 1e-13) {
      return Status::FailedPrecondition(
          Format("singular system (pivot %zu has magnitude %.3e)", col, best));
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.at(col, c), a.at(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a.at(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a.at(r, col) * inv;
      if (factor == 0.0) continue;
      a.at(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) a.at(r, c) -= factor * a.at(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = b[ri];
    for (size_t c = ri + 1; c < n; ++c) acc -= a.at(ri, c) * x[c];
    x[ri] = acc / a.at(ri, ri);
  }
  return x;
}

Result<std::vector<double>> UnitEigenvector(const Matrix& a) {
  const size_t n = a.rows();
  if (a.cols() != n || n == 0) {
    return Status::InvalidArgument("UnitEigenvector requires a non-empty square matrix");
  }
  // (A - I) v = 0 with one equation replaced by the normalization sum(v) = 1.
  // Try replacing each row in turn until the system is solvable; the system
  // has a one-dimensional nullspace for proper refinement matrices, so some
  // replacement must succeed.
  for (size_t replace = 0; replace < n; ++replace) {
    Matrix m = a - Matrix::Identity(n);
    std::vector<double> rhs(n, 0.0);
    for (size_t c = 0; c < n; ++c) m.at(replace, c) = 1.0;
    rhs[replace] = 1.0;
    Result<std::vector<double>> solved = SolveLinearSystem(m, rhs);
    if (!solved.ok()) continue;
    // Verify the residual of the eigen equation on the solution.
    const std::vector<double>& v = solved.value();
    std::vector<double> av = a.Apply(v);
    double residual = 0.0;
    for (size_t i = 0; i < n; ++i) residual = std::max(residual, std::fabs(av[i] - v[i]));
    if (residual < 1e-8) return solved;
  }
  return Status::FailedPrecondition("matrix has no eigenvector for eigenvalue 1");
}

}  // namespace numerics
}  // namespace wde
