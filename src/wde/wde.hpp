/// \file wde/wde.hpp
/// Umbrella header for the whole WDE library — the public API surface of this
/// reproduction of *Adaptive Density Estimation* (VLDB 2006).
///
/// Including this single header pulls in every public module header, bottom of
/// the dependency graph first:
///
///   util        — Status/Result error model, WDE_CHECK, string helpers
///   io          — versioned snapshot wire format (sinks/sources, CRC chunks)
///   memory      — columnar copy-on-write arenas + the mmap-able fast-state
///                 frame under every estimator's fitted buffers
///   parallel    — the shared ThreadPool executor behind every parallel path
///   numerics    — integration, interpolation, linear algebra, optimisation
///   stats       — RNG, descriptive stats, empirical CDF, losses, bootstrap
///   wavelet     — Daubechies filters, cascade/Daubechies–Lagarias point
///                 evaluation, discrete wavelet transform
///   kernel      — kernel functions, bandwidth selectors, KDE baseline
///   processes   — the paper's data-generating processes (Section 5)
///   core        — wavelet coefficient estimation, thresholding, the adaptive
///                 density estimator, confidence bands
///   selectivity — wavelet/KDE/histogram/sample selectivity estimators over
///                 range-query workloads, plus the sharded parallel ingest
///                 wrapper over any mergeable estimator
///   serving     — the concurrent serving engine: epoch-published immutable
///                 estimator views with lock-free steady-state readers, the
///                 typed-query result cache, admission batching, checkpoints
///   diagnostics — mixing/covariance-decay diagnostics
///   harness     — Monte-Carlo replication harness and experiment configs
///
/// The library never throws: fallible operations return wde::Result<T> (see
/// util/result.hpp) and contract violations abort via WDE_CHECK. A minimal
/// translation unit containing only `#include "wde/wde.hpp"` must always
/// compile; tests/umbrella_test.cpp enforces this invariant.
#ifndef WDE_WDE_HPP_
#define WDE_WDE_HPP_

// util — foundation; no intra-library dependencies.
#include "util/check.hpp"
#include "util/result.hpp"
#include "util/status.hpp"
#include "util/string_util.hpp"

// io — depends on util. Snapshot wire format: byte sinks/sources, primitive
// encodings, CRC-framed chunks.
#include "io/chunk.hpp"
#include "io/serialize.hpp"

// memory — depends on io, util. Columnar copy-on-write arenas and the ARN1
// fast-state frame behind the zero-copy snapshot path.
#include "memory/arena.hpp"
#include "memory/fast_state.hpp"

// parallel — depends on util.
#include "parallel/thread_pool.hpp"

// numerics — depends on util.
#include "numerics/integration.hpp"
#include "numerics/interpolation.hpp"
#include "numerics/matrix.hpp"
#include "numerics/optimize.hpp"
#include "numerics/polynomial.hpp"
#include "numerics/special_functions.hpp"

// stats — depends on numerics, util.
#include "stats/autocovariance.hpp"
#include "stats/block_bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/empirical.hpp"
#include "stats/loss.hpp"
#include "stats/rng.hpp"

// wavelet — depends on numerics, util.
#include "wavelet/cascade.hpp"
#include "wavelet/daubechies_lagarias.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filter.hpp"
#include "wavelet/scaled_function.hpp"

// kernel — depends on stats, numerics, util.
#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "kernel/kernels.hpp"

// multidim — depends on kernel, stats, memory, numerics, util.
#include "multidim/grid2d.hpp"
#include "multidim/prod_kde2d.hpp"
#include "multidim/synthetic2d.hpp"

// processes — depends on stats, numerics, util.
#include "processes/ar1_process.hpp"
#include "processes/arch_process.hpp"
#include "processes/doubling_map.hpp"
#include "processes/iid_process.hpp"
#include "processes/larch_process.hpp"
#include "processes/linear_process.hpp"
#include "processes/logistic_map.hpp"
#include "processes/lsv_map.hpp"
#include "processes/noncausal_ma.hpp"
#include "processes/process.hpp"
#include "processes/target_density.hpp"
#include "processes/transformed_process.hpp"

// core — depends on wavelet, stats, numerics, util.
#include "core/adaptive.hpp"
#include "core/besov.hpp"
#include "core/binned.hpp"
#include "core/coefficients.hpp"
#include "core/confidence.hpp"
#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "core/thresholding.hpp"

// selectivity — depends on core, kernel, wavelet, stats, io, util.
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/grid2d_selectivity.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde2d_selectivity.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"

// serving — depends on selectivity, parallel, io, util.
#include "serving/estimator_service.hpp"
#include "serving/query_cache.hpp"

// diagnostics — depends on stats, util.
#include "diagnostics/covariance_decay.hpp"

// harness — depends on processes, stats, util.
#include "harness/cases.hpp"
#include "harness/experiment_config.hpp"
#include "harness/monte_carlo.hpp"
#include "harness/table.hpp"

#endif  // WDE_WDE_HPP_
