/// \file diagnostics/covariance_decay.hpp
/// Entry header of the `diagnostics` module: the empirical check of the
/// paper's Assumption (D), which requires |Cov(g(X_0), g(X_r))| ≤ c·e^{-a r^b}
/// for Theorem 3.1's risk bound to hold. Exponential vs power-law fits
/// separate the good regime from the LSV regime of Proposition 5.1 (decay
/// ~ r^{1-1/α'}), where thresholded estimators lose their guarantees.
/// Invariant: reports are Monte-Carlo averages over deterministic RNG forks,
/// so diagnostics reproduce exactly for a fixed seed.
#ifndef WDE_DIAGNOSTICS_COVARIANCE_DECAY_HPP_
#define WDE_DIAGNOSTICS_COVARIANCE_DECAY_HPP_

#include <functional>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace wde {
namespace diagnostics {

/// Least-squares fit of log|cov| against a lag feature. For the exponential
/// model log ρ(r) = log c − a·r (Assumption (D) with b = 1); for the power
/// model log ρ(r) = log c − p·log r (the LSV regime of Proposition 5.1).
struct DecayFit {
  double log_c = 0.0;
  double rate = 0.0;  // a (exponential) or p (power)
  double r_squared = 0.0;
};

/// Empirical measurement of the covariance decay |Cov(g(X_0), g(X_r))| that
/// Assumption (D) bounds, with a model comparison telling whether the decay
/// looks exponential (weak dependence strong enough for Theorem 3.1) or
/// polynomial (Proposition 5.1 territory).
struct CovarianceDecayReport {
  std::vector<double> lags;        // 1..max_lag
  std::vector<double> covariance;  // MC-averaged |Cov(g(X_0), g(X_r))|
  double variance = 0.0;           // Var(g(X_0)), the lag-0 term
  /// False when every lag ≥ 1 covariance sits below the Monte-Carlo noise
  /// floor ~ Var(g)/√(path·replicates) — e.g. iid streams — in which case the
  /// model comparison below is fitting noise and should be ignored.
  bool dependence_detected = false;
  DecayFit exponential;
  DecayFit power;
  bool exponential_preferred = false;

  /// "negligible", "exponential" or "polynomial".
  const char* Verdict() const;

  std::string Summary() const;
};

/// Monte-Carlo estimate of the covariance decay of g(X_t) for paths produced
/// by `sampler` (which must return a fresh stationary path of length
/// `path_length` per call).
CovarianceDecayReport MeasureCovarianceDecay(
    const std::function<std::vector<double>(stats::Rng&)>& sampler,
    const std::function<double(double)>& g, int max_lag, int replicates,
    uint64_t seed);

}  // namespace diagnostics
}  // namespace wde

#endif  // WDE_DIAGNOSTICS_COVARIANCE_DECAY_HPP_
