#include "diagnostics/covariance_decay.hpp"

#include <cmath>

#include "stats/autocovariance.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace diagnostics {
namespace {

/// Ordinary least squares of y on x with intercept; returns {intercept,
/// slope, R²}.
DecayFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  DecayFit fit;
  const size_t n = x.size();
  if (n < 2) return fit;
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double nn = static_cast<double>(n);
  const double denom = nn * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12) return fit;
  const double slope = (nn * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / nn;
  double ss_res = 0.0, ss_tot = 0.0;
  const double mean_y = sy / nn;
  for (size_t i = 0; i < n; ++i) {
    const double pred = intercept + slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.log_c = intercept;
  fit.rate = -slope;  // decay rates reported positive
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  return fit;
}

}  // namespace

CovarianceDecayReport MeasureCovarianceDecay(
    const std::function<std::vector<double>(stats::Rng&)>& sampler,
    const std::function<double(double)>& g, int max_lag, int replicates,
    uint64_t seed) {
  WDE_CHECK_GT(max_lag, 0);
  WDE_CHECK_GT(replicates, 0);
  CovarianceDecayReport report;
  std::vector<double> acc(static_cast<size_t>(max_lag) + 1, 0.0);
  stats::Rng root(seed);
  for (int rep = 0; rep < replicates; ++rep) {
    stats::Rng rng = root.Fork(static_cast<uint64_t>(rep));
    const std::vector<double> path = sampler(rng);
    WDE_CHECK_GT(path.size(), static_cast<size_t>(max_lag));
    const std::vector<double> gamma =
        stats::AutocovarianceOfTransform(path, g, max_lag);
    for (size_t r = 0; r < gamma.size(); ++r) acc[r] += gamma[r];
  }
  for (double& v : acc) v /= static_cast<double>(replicates);
  report.variance = acc[0];

  // Monte-Carlo noise floor of an autocovariance estimate at one lag:
  // sd ≈ Var(g)/√(path_length · replicates).
  size_t path_length = 0;
  {
    stats::Rng probe = root.Fork(0);
    path_length = sampler(probe).size();
  }
  const double noise_floor =
      3.0 * report.variance /
      std::sqrt(static_cast<double>(path_length) * static_cast<double>(replicates));

  // Fit the decay models only on lags whose covariance clears the noise
  // floor: below it the estimates are Monte-Carlo noise and would drag both
  // regressions toward a spurious flat (power-law-looking) tail.
  std::vector<double> lags_lin, lags_log, log_cov;
  double max_cov = 0.0;
  for (int r = 1; r <= max_lag; ++r) {
    const double cov = std::fabs(acc[static_cast<size_t>(r)]);
    report.lags.push_back(static_cast<double>(r));
    report.covariance.push_back(cov);
    max_cov = std::max(max_cov, cov);
    if (cov > noise_floor) {
      lags_lin.push_back(static_cast<double>(r));
      lags_log.push_back(std::log(static_cast<double>(r)));
      log_cov.push_back(std::log(cov));
    }
  }
  report.dependence_detected = max_cov > noise_floor;
  report.exponential = FitLine(lags_lin, log_cov);
  report.power = FitLine(lags_log, log_cov);
  report.exponential_preferred =
      report.exponential.r_squared >= report.power.r_squared;
  return report;
}

const char* CovarianceDecayReport::Verdict() const {
  if (!dependence_detected) return "negligible";
  return exponential_preferred ? "exponential" : "polynomial";
}

std::string CovarianceDecayReport::Summary() const {
  return Format(
      "exp fit: rate=%.4f R2=%.3f | power fit: exponent=%.3f R2=%.3f -> %s decay",
      exponential.rate, exponential.r_squared, power.rate, power.r_squared,
      Verdict());
}

}  // namespace diagnostics
}  // namespace wde
