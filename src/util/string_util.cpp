#include "util/string_util.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wde {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

long EnvInt(const char* name, long fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw) return fallback;
  return value;
}

double EnvDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

std::string ArgString(int argc, char** argv, const char* name,
                      const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

size_t ArgSize(int argc, char** argv, const char* name, size_t fallback) {
  const std::string raw = ArgString(argc, argv, name, "");
  if (raw.empty()) return fallback;
  return static_cast<size_t>(std::strtoull(raw.c_str(), nullptr, 10));
}

bool ArgBool(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace wde
