#ifndef WDE_UTIL_RESULT_HPP_
#define WDE_UTIL_RESULT_HPP_

#include <optional>
#include <utility>

#include "util/check.hpp"
#include "util/status.hpp"

namespace wde {

/// Value-or-Status, in the spirit of arrow::Result. A `Result<T>` holds either
/// a `T` (then `ok()` is true) or a non-OK `Status` describing the failure.
/// Accessing the value of a failed result aborts via WDE_CHECK.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit construction from an error: `return Status::InvalidArgument(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    WDE_CHECK(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    WDE_CHECK(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    WDE_CHECK(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    WDE_CHECK(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

}  // namespace wde

#endif  // WDE_UTIL_RESULT_HPP_
