#ifndef WDE_UTIL_RESULT_HPP_
#define WDE_UTIL_RESULT_HPP_

#include <optional>
#include <utility>

#include "util/check.hpp"
#include "util/status.hpp"

namespace wde {

/// Value-or-Status, in the spirit of arrow::Result. A `Result<T>` holds either
/// a `T` (then `ok()` is true) or a non-OK `Status` describing the failure.
/// Accessing the value of a failed result aborts via WDE_CHECK.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /// Implicit construction from an error: `return Status::InvalidArgument(...)`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    WDE_CHECK(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    WDE_CHECK(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    WDE_CHECK(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    WDE_CHECK(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ engaged.
};

}  // namespace wde

/// Propagates a non-OK Status out of the enclosing function:
///   WDE_RETURN_IF_ERROR(sink.Append(data, size));
/// The expression must evaluate to a `Status` (or const reference to one).
#define WDE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::wde::Status _wde_status = (expr);          \
    if (!_wde_status.ok()) return _wde_status;   \
  } while (0)

/// Evaluates a `Result<T>` expression, propagating the error or binding the
/// value:
///   WDE_ASSIGN_OR_RETURN(const uint32_t tag, io::ReadU32(source));
/// The enclosing function must return `Status` or a `Result<U>` (both are
/// implicitly constructible from a non-OK Status).
#define WDE_ASSIGN_OR_RETURN(lhs, rexpr) \
  WDE_ASSIGN_OR_RETURN_IMPL_(WDE_RESULT_CONCAT_(_wde_result, __LINE__), lhs, rexpr)

#define WDE_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr)  \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

#define WDE_RESULT_CONCAT_(a, b) WDE_RESULT_CONCAT_IMPL_(a, b)
#define WDE_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // WDE_UTIL_RESULT_HPP_
