#ifndef WDE_UTIL_CHECK_HPP_
#define WDE_UTIL_CHECK_HPP_

#include <cstdio>
#include <cstdlib>

namespace wde {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const char* msg) {
  std::fprintf(stderr, "WDE_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace wde

/// Aborts with a diagnostic if `cond` is false. Active in all build types;
/// use for violated API contracts and internal invariants (the library does
/// not throw exceptions).
#define WDE_CHECK(cond, ...)                                       \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::wde::internal::CheckFailed(__FILE__, __LINE__, #cond,      \
                                   ::wde::internal::CheckMessage(__VA_ARGS__)); \
    }                                                              \
  } while (0)

#define WDE_CHECK_OK(status_expr)                                         \
  do {                                                                    \
    const ::wde::Status& _wde_st = (status_expr);                         \
    if (!_wde_st.ok()) {                                                  \
      ::wde::internal::CheckFailed(__FILE__, __LINE__, #status_expr,      \
                                   _wde_st.ToString().c_str());           \
    }                                                                     \
  } while (0)

#define WDE_CHECK_EQ(a, b, ...) WDE_CHECK((a) == (b), ##__VA_ARGS__)
#define WDE_CHECK_NE(a, b, ...) WDE_CHECK((a) != (b), ##__VA_ARGS__)
#define WDE_CHECK_LT(a, b, ...) WDE_CHECK((a) < (b), ##__VA_ARGS__)
#define WDE_CHECK_LE(a, b, ...) WDE_CHECK((a) <= (b), ##__VA_ARGS__)
#define WDE_CHECK_GT(a, b, ...) WDE_CHECK((a) > (b), ##__VA_ARGS__)
#define WDE_CHECK_GE(a, b, ...) WDE_CHECK((a) >= (b), ##__VA_ARGS__)

/// Debug-only variant; compiles away under NDEBUG.
#ifdef NDEBUG
#define WDE_DCHECK(cond, ...) \
  do {                        \
  } while (0)
#else
#define WDE_DCHECK(cond, ...) WDE_CHECK(cond, ##__VA_ARGS__)
#endif

namespace wde {
namespace internal {

inline const char* CheckMessage() { return ""; }
inline const char* CheckMessage(const char* msg) { return msg; }

}  // namespace internal
}  // namespace wde

#endif  // WDE_UTIL_CHECK_HPP_
