/// \file util/status.hpp
/// Entry header of the `util` module: the library-wide error model.
/// Invariants: the library never throws — fallible operations return
/// `Status`/`Result<T>` (result.hpp), violated internal contracts abort via
/// WDE_CHECK (check.hpp). A default-constructed Status is OK and carries no
/// message; `ToString()` is stable and suitable for logs/tests.
#ifndef WDE_UTIL_STATUS_HPP_
#define WDE_UTIL_STATUS_HPP_

#include <string>
#include <utility>

namespace wde {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation. The library does not throw; operations that
/// can fail on user input return `Status` (or `Result<T>`); violated internal
/// invariants abort through the WDE_CHECK macros instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace wde

#endif  // WDE_UTIL_STATUS_HPP_
