#ifndef WDE_UTIL_STRING_UTIL_HPP_
#define WDE_UTIL_STRING_UTIL_HPP_

#include <cstddef>
#include <string>
#include <vector>

namespace wde {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Reads an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable. Used for bench knobs (e.g. WDE_REPS).
long EnvInt(const char* name, long fallback);

/// Reads a floating-point environment variable with a fallback.
double EnvDouble(const char* name, double fallback);

// Command-line flag helpers shared by the bench and example drivers
// (perf_sharded, perf_snapshot, snapshot_merge_demo): scan argv for
// "--name=value" / bare "--name"; the first occurrence wins.

/// Value of "--name=value", or `fallback` when the flag is absent.
std::string ArgString(int argc, char** argv, const char* name,
                      const std::string& fallback);

/// "--name=123" parsed as an unsigned size, or `fallback` when absent.
size_t ArgSize(int argc, char** argv, const char* name, size_t fallback);

/// True when bare "--name" is present.
bool ArgBool(int argc, char** argv, const char* name);

}  // namespace wde

#endif  // WDE_UTIL_STRING_UTIL_HPP_
