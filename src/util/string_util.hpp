#ifndef WDE_UTIL_STRING_UTIL_HPP_
#define WDE_UTIL_STRING_UTIL_HPP_

#include <string>
#include <vector>

namespace wde {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Reads an integer environment variable, returning `fallback` when the
/// variable is unset or unparsable. Used for bench knobs (e.g. WDE_REPS).
long EnvInt(const char* name, long fallback);

/// Reads a floating-point environment variable with a fallback.
double EnvDouble(const char* name, double fallback);

}  // namespace wde

#endif  // WDE_UTIL_STRING_UTIL_HPP_
