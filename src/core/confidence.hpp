#ifndef WDE_CORE_CONFIDENCE_HPP_
#define WDE_CORE_CONFIDENCE_HPP_

#include <span>
#include <vector>

#include "core/adaptive.hpp"

namespace wde {
namespace core {

/// Pointwise bootstrap confidence band for the adaptive wavelet estimator.
/// `center` is the estimate on the full sample; `lower`/`upper` are pointwise
/// percentile bounds across block-bootstrap refits. Percentile bands quantify
/// sampling variability; they inherit the estimator's smoothing bias, so
/// they are calibration diagnostics rather than exact frequentist intervals.
struct ConfidenceBand {
  std::vector<double> grid;
  std::vector<double> center;
  std::vector<double> lower;
  std::vector<double> upper;
  double level = 0.0;
  size_t block_length = 0;
  int resamples = 0;

  /// Fraction of grid points where a reference curve lies inside the band.
  double CoverageOf(std::span<const double> reference) const;
};

struct ConfidenceBandOptions {
  AdaptiveOptions adaptive;
  size_t grid_points = 257;
  double level = 0.90;
  int resamples = 200;
  /// 0 = the n^{1/3} rule. Use 1 for iid data.
  size_t block_length = 0;
  uint64_t seed = 1;
};

/// Fits the estimator on `data`, then on `resamples` circular-block-bootstrap
/// resamples (re-running the full cross-validation each time, so threshold
/// selection noise is included), and returns the pointwise percentile band.
Result<ConfidenceBand> BootstrapConfidenceBand(const wavelet::WaveletBasis& basis,
                                               std::span<const double> data,
                                               const ConfidenceBandOptions& options);

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_CONFIDENCE_HPP_
