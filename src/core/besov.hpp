#ifndef WDE_CORE_BESOV_HPP_
#define WDE_CORE_BESOV_HPP_

#include <vector>

#include "core/coefficients.hpp"

namespace wde {
namespace core {

/// Empirical Besov sequence norm of the fitted coefficients (paper §2.2):
///   ‖f‖_{s,π,r} =
///     |α̂_{j0,·}|_π + ( Σ_j [2^{j(sπ+π/2−1)} Σ_k |β̂_{j,k}|^π]^{r/π} )^{1/r},
/// a diagnostic for the (unknown) smoothness class B^s_{π,r} driving the
/// minimax rates of Theorem 3.1. Uses the fitted levels [j0, j_max].
double BesovSequenceNorm(const EmpiricalCoefficients& coefficients, double s,
                         double pi, double r);

/// Per-level π-norms Σ_k |β̂_{j,k}|^π (before weighting); index 0 is level j0.
std::vector<double> LevelCoefficientNorms(const EmpiricalCoefficients& coefficients,
                                          double pi);

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_BESOV_HPP_
