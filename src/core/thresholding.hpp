#ifndef WDE_CORE_THRESHOLDING_HPP_
#define WDE_CORE_THRESHOLDING_HPP_

#include <limits>
#include <vector>

#include "util/result.hpp"

namespace wde {
namespace core {

/// The two threshold functions of Donoho et al. used throughout the paper.
enum class ThresholdKind {
  kHard,  // γ_λ(β) = β · 1{|β| > λ}
  kSoft,  // γ_λ(β) = sign(β) (|β| − λ)_+
};

const char* ThresholdKindName(ThresholdKind kind);

/// Applies γ_λ to a coefficient. λ = +inf kills the coefficient.
double ApplyThreshold(ThresholdKind kind, double beta, double lambda);

/// Level-wise threshold schedule for detail levels j0 .. j0+size-1. A value
/// of +infinity disables a level entirely.
struct ThresholdSchedule {
  int j0 = 0;
  std::vector<double> lambda;  // lambda[j - j0]

  int j_max() const { return j0 + static_cast<int>(lambda.size()) - 1; }
  double LevelLambda(int j) const;
  static constexpr double kKillLevel = std::numeric_limits<double>::infinity();
};

/// Theorem 3.1's theoretical schedule λ_j = K √(j/n) on levels [j0, j1].
/// The constant K depends on the (typically unknown) weak-dependence
/// constants, which is exactly why the paper introduces cross-validation; the
/// rule is exposed for the ablation benches.
ThresholdSchedule TheoreticalSchedule(double k_constant, int j0, int j1, size_t n);

/// Theorem 3.1's top detail level j1 = largest integer below
/// log2(n · (ln n)^{−2/b−3}), clamped to [j0, log2 n]. At realistic n this
/// asymptotic formula is very small — the reason the simulations use CV.
int TheoreticalTopLevel(size_t n, double dependence_b, int j0);

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_THRESHOLDING_HPP_
