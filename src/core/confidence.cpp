#include "core/confidence.hpp"

#include <algorithm>
#include <cmath>

#include "stats/block_bootstrap.hpp"
#include "util/check.hpp"

namespace wde {
namespace core {

double ConfidenceBand::CoverageOf(std::span<const double> reference) const {
  WDE_CHECK_EQ(reference.size(), grid.size(), "reference grid mismatch");
  size_t inside = 0;
  for (size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] >= lower[i] && reference[i] <= upper[i]) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(reference.size());
}

Result<ConfidenceBand> BootstrapConfidenceBand(const wavelet::WaveletBasis& basis,
                                               std::span<const double> data,
                                               const ConfidenceBandOptions& options) {
  if (options.resamples < 10) {
    return Status::InvalidArgument("need at least 10 bootstrap resamples");
  }
  if (!(options.level > 0.0 && options.level < 1.0)) {
    return Status::InvalidArgument("confidence level must lie in (0,1)");
  }
  if (options.grid_points < 2) {
    return Status::InvalidArgument("need at least 2 grid points");
  }
  Result<AdaptiveDensityEstimate> center_fit =
      FitAdaptive(basis, data, options.adaptive);
  if (!center_fit.ok()) return center_fit.status();

  const double lo = options.adaptive.fit.domain_lo;
  const double hi = options.adaptive.fit.domain_hi;
  const size_t g = options.grid_points;

  ConfidenceBand band;
  band.level = options.level;
  band.resamples = options.resamples;
  band.block_length = options.block_length > 0
                          ? options.block_length
                          : stats::DefaultBlockLength(data.size());
  band.grid.resize(g);
  for (size_t i = 0; i < g; ++i) {
    band.grid[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(g - 1);
  }
  band.center = center_fit->estimate.EvaluateOnGrid(lo, hi, g);

  // Collect the bootstrap curves (resamples × grid).
  std::vector<std::vector<double>> curves;
  curves.reserve(static_cast<size_t>(options.resamples));
  stats::Rng root(options.seed);
  for (int b = 0; b < options.resamples; ++b) {
    stats::Rng rng = root.Fork(static_cast<uint64_t>(b));
    const std::vector<double> resample =
        stats::CircularBlockBootstrapResample(data, band.block_length, rng);
    Result<AdaptiveDensityEstimate> fit =
        FitAdaptive(basis, resample, options.adaptive);
    if (!fit.ok()) return fit.status();
    curves.push_back(fit->estimate.EvaluateOnGrid(lo, hi, g));
  }

  // Pointwise percentile bounds.
  const double tail = (1.0 - options.level) / 2.0;
  band.lower.resize(g);
  band.upper.resize(g);
  std::vector<double> column(curves.size());
  for (size_t i = 0; i < g; ++i) {
    for (size_t b = 0; b < curves.size(); ++b) column[b] = curves[b][i];
    std::sort(column.begin(), column.end());
    const double pos_lo = tail * static_cast<double>(column.size() - 1);
    const double pos_hi = (1.0 - tail) * static_cast<double>(column.size() - 1);
    const auto pick = [&](double pos) {
      const size_t idx = static_cast<size_t>(pos);
      const double frac = pos - std::floor(pos);
      const size_t next = std::min(idx + 1, column.size() - 1);
      return column[idx] * (1.0 - frac) + column[next] * frac;
    };
    band.lower[i] = pick(pos_lo);
    band.upper[i] = pick(pos_hi);
  }
  return band;
}

}  // namespace core
}  // namespace wde
