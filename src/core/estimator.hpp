/// \file core/estimator.hpp
/// Entry header of the `core` module: reconstruction of the thresholded
/// wavelet density estimate
///   f̂ = Σ_k α̂_{j0,k} φ_{j0,k} + Σ_{j=j0}^{ĵ1} Σ_k γ_{λ̂_j}(β̂_{j,k}) ψ_{j,k}
/// (the paper's Eq. (2.4)-style expansion with the §5.1 level defaults; see
/// adaptive.hpp for the one-call HTCV/STCV facade). Invariants: the estimate
/// is a *signed* measure — thresholding does not preserve positivity, so
/// Evaluate() may go below 0 and IntegrateRange() slightly outside [0, 1];
/// IntegrateRange is exact w.r.t. the basis antiderivative tables, making
/// range queries consistent with pointwise evaluation.
#ifndef WDE_CORE_ESTIMATOR_HPP_
#define WDE_CORE_ESTIMATOR_HPP_

#include <span>
#include <vector>

#include "core/coefficients.hpp"
#include "core/thresholding.hpp"
#include "numerics/interpolation.hpp"
#include "util/result.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace core {

/// A fitted (reconstructed) thresholded wavelet density estimate
///   f̂ = Σ_k α̂_{j0,k} φ_{j0,k} + Σ_{j=j0}^{j1} Σ_k γ_{λ_j}(β̂_{j,k}) ψ_{j,k}
/// on an arbitrary domain [lo, hi] (internally mapped to [0, 1]).
class WaveletEstimate {
 public:
  struct DetailLevel {
    int j = 0;
    int k_lo = 0;
    std::vector<double> theta;  // thresholded coefficients
    int kept = 0;               // non-zero coefficients after thresholding
  };

  double Evaluate(double x) const;

  /// Batch evaluation: out[i] = Evaluate(xs[i]), bit-identical to the scalar
  /// call, but reconstructed one pass per level (hoisted 2^j/2^{j/2}/table
  /// setup) instead of one pass per point.
  void EvaluateMany(std::span<const double> xs, std::span<double> out) const;

  /// Built on EvaluateMany; one level pass over the whole grid.
  std::vector<double> EvaluateOnGrid(double lo, double hi, size_t points) const;

  /// Exact ∫_a^b f̂ via the basis antiderivative tables (what a selectivity
  /// query is). The estimate is a signed measure — thresholding does not
  /// preserve positivity — so values may fall slightly outside [0, 1].
  double IntegrateRange(double a, double b) const;

  /// Batch range integration: out[i] = IntegrateRange(a[i], b[i]),
  /// bit-identical to the scalar call, one pass per level across all ranges.
  /// The batch query path of the selectivity layer.
  void IntegrateRangeMany(std::span<const double> a, std::span<const double> b,
                          std::span<double> out) const;

  /// Total mass ∫ f̂ over the domain.
  double TotalMass() const;

  /// u-quantile of the normalized estimate: the x with
  /// ∫_{domain_lo}^{x} f̂ = u · TotalMass(), found by bisection. The signed
  /// estimate's running integral can be locally non-monotone, so the result
  /// is the bisection root of the (approximately increasing) CDF.
  double Quantile(double u) const;

  /// Writes the reconstructed expansion (domain, α coefficients, thresholded
  /// detail levels) WITHOUT the basis — the owner serializes the basis
  /// identity once and passes the rebuilt basis to Deserialize. Round trips
  /// are bit-exact, so a restored estimate answers Evaluate/IntegrateRange
  /// bit-identically.
  Status Serialize(io::Sink& sink) const;

  /// Restores an estimate written by Serialize over `basis`. Corrupt input
  /// yields a non-OK Result.
  static Result<WaveletEstimate> Deserialize(const wavelet::WaveletBasis& basis,
                                             io::Source& source);

  double domain_lo() const { return lo_; }
  double domain_hi() const { return lo_ + width_; }
  int j0() const { return j0_; }
  /// Highest detail level carried by this estimate.
  int j_max() const;
  const std::vector<DetailLevel>& details() const { return details_; }
  /// Fraction of coefficients at level j set to zero by thresholding.
  double ThresholdedFraction(int j) const;

 private:
  friend class WaveletDensityFit;

  explicit WaveletEstimate(wavelet::WaveletBasis basis) : basis_(std::move(basis)) {}

  wavelet::WaveletBasis basis_;
  double lo_ = 0.0;
  double width_ = 1.0;
  int j0_ = 0;
  int scaling_k_lo_ = 0;
  std::vector<double> alpha_;
  std::vector<DetailLevel> details_;
};

/// Options controlling a fit. Negative values select the paper's defaults at
/// fit time (j0 from Theorem 3.1 / §5.1, j_max = j* = log2 n).
struct FitOptions {
  int j0 = -1;
  int j_max = -1;
  double domain_lo = 0.0;
  double domain_hi = 1.0;
};

/// The estimation engine: accumulates empirical coefficients for data on
/// [domain_lo, domain_hi] and reconstructs estimates under any threshold
/// schedule. Batch fitting uses `Fit`; the streaming selectivity layer uses
/// `CreateStreaming` + `Add` (levels fixed up front since n grows).
class WaveletDensityFit {
 public:
  static Result<WaveletDensityFit> Fit(const wavelet::WaveletBasis& basis,
                                       std::span<const double> data,
                                       const FitOptions& options = {});

  static Result<WaveletDensityFit> CreateStreaming(const wavelet::WaveletBasis& basis,
                                                   int j0, int j_max,
                                                   double domain_lo = 0.0,
                                                   double domain_hi = 1.0);

  /// Snapshot fast path: rebuilds a fit over `basis` from previously
  /// accumulated coefficient sums (see EmpiricalCoefficients::RestoreSums
  /// for the column order; geometry mismatches yield a Status). The basis
  /// may itself be table-restored (WaveletBasis::FromTables); the rebuilt
  /// fit reconstructs bit-identically to the one that saved the sums.
  static Result<WaveletDensityFit> FromRestoredSums(
      const wavelet::WaveletBasis& basis, int j0, int j_max, double domain_lo,
      double domain_hi, uint64_t count,
      std::span<const std::span<const double>> sums);

  /// Adds one observation (must lie inside the domain; checked).
  void Add(double x);

  /// Batch insert: equivalent to Add(x) per element in order (bit-identical
  /// coefficient sums), routed through the batched accumulator. An empty
  /// span is an explicit no-op.
  void AddBatch(std::span<const double> xs);

  /// Folds another fit's coefficient sums into this one (see
  /// `EmpiricalCoefficients::Merge`). After a successful merge, `Estimate`
  /// reconstructs from the combined sums — the rebuild-from-merged path the
  /// sharded selectivity engine queries through — and matches a fit of the
  /// concatenated stream to ~1e-12 relative (summation order differs).
  /// Fails, leaving this fit untouched, when the domain, filter or level
  /// range differ.
  Status Merge(const WaveletDensityFit& other);

  /// Writes the fit domain plus the full coefficient accumulator (see
  /// EmpiricalCoefficients::Serialize); round trips are bit-exact.
  Status Serialize(io::Sink& sink) const;

  /// Restores a fit written by Serialize, rebuilding the basis from its
  /// serialized identity.
  static Result<WaveletDensityFit> Deserialize(io::Source& source);

  size_t count() const { return coefficients_.count(); }
  const EmpiricalCoefficients& coefficients() const { return coefficients_; }
  double domain_lo() const { return lo_; }
  double domain_hi() const { return lo_ + width_; }

  /// Reconstructs the estimate under a threshold schedule. Detail levels not
  /// covered by the schedule are dropped.
  WaveletEstimate Estimate(const ThresholdSchedule& schedule,
                           ThresholdKind kind) const;

  /// Linear (non-thresholded) estimate keeping all detail levels up to j1;
  /// j1 < j0 gives the pure projection onto V_{j0}. The paper's reference
  /// non-adaptive estimator.
  WaveletEstimate LinearEstimate(int j1) const;

 private:
  WaveletDensityFit(EmpiricalCoefficients coefficients, double lo, double width)
      : coefficients_(std::move(coefficients)), lo_(lo), width_(width) {}

  EmpiricalCoefficients coefficients_;
  double lo_;
  double width_;
};

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_ESTIMATOR_HPP_
