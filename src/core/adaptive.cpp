#include "core/adaptive.hpp"

namespace wde {
namespace core {

Result<AdaptiveDensityEstimate> FitAdaptive(const wavelet::WaveletBasis& basis,
                                            std::span<const double> data,
                                            const AdaptiveOptions& options) {
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(basis, data, options.fit);
  if (!fit.ok()) return fit.status();
  CrossValidationResult cv = CrossValidate(fit->coefficients(), options.kind);
  WaveletEstimate estimate = fit->Estimate(cv.Schedule(), options.kind);
  return AdaptiveDensityEstimate{std::move(estimate), std::move(cv)};
}

}  // namespace core
}  // namespace wde
