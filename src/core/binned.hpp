#ifndef WDE_CORE_BINNED_HPP_
#define WDE_CORE_BINNED_HPP_

#include <span>
#include <vector>

#include "core/thresholding.hpp"
#include "io/serialize.hpp"
#include "util/result.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace core {

/// WaveLab-style fast batch fitting — the computational scheme the paper's
/// own simulations use ("the usual DWT algorithm ... on an equidistant
/// grid"): bin the data into 2^J cells, treat the scaled counts
/// s_k = 2^{J/2}·count_k/n as finest-level scaling coefficients, and run the
/// periodized Mallat pyramid down to j0. Costs O(n + 2^J·L) total versus
/// O(n·levels·L) for the exact streaming path, at the price of two
/// approximations: the O(2^{-J}) binning error and periodized (wrap-around)
/// boundary handling. Exact and binned coefficients agree away from the
/// boundary — asserted by tests.
///
/// The binned path carries no per-coefficient pair sums, so it supports
/// fixed threshold schedules (e.g. `TheoreticalSchedule`) but not the
/// HTCV/STCV criteria; use `WaveletDensityFit` for cross-validation.
///
/// The bin counts accumulate incrementally (`AddBatch`); the pyramid is
/// recomputed lazily from the raw counts when coefficients or grid estimates
/// are next read, so batched streaming appends cost O(batch) plus one
/// O(2^J·L) transform per read of a stale fit.
class BinnedWaveletFit {
 public:
  /// Bins `data` (values inside [lo, hi]; outside is an error) into 2^J
  /// cells and runs the pyramid. Requires j0 >= 0 and J > j0.
  static Result<BinnedWaveletFit> Fit(const wavelet::WaveletFilter& filter,
                                      std::span<const double> data, int j0,
                                      int finest_level, double lo = 0.0,
                                      double hi = 1.0);

  /// Bins additional observations into the existing grid. Fit(a ++ b) and
  /// Fit(a) followed by AddBatch(b) produce bit-identical coefficients (bin
  /// counts are exact integer sums). Values outside [lo, hi] are an error
  /// and leave the fit unchanged. An empty span is an explicit no-op.
  Status AddBatch(std::span<const double> data);

  /// Folds another fit's bin counts into this one (cell-wise addition).
  /// Counts are exact integers, so merging fits over disjoint sub-streams is
  /// bit-identical to one fit of the concatenated stream — the strongest
  /// form of the mergeability contract. The cached pyramid is invalidated
  /// and lazily recomputed from the merged counts at the next read. Fails
  /// (leaving this fit untouched) when the filter, level range or domain
  /// differ.
  Status Merge(const BinnedWaveletFit& other);

  /// Writes the filter identity, level range, domain and the raw per-cell
  /// counts. Counts are exact integers stored in doubles, so the round trip
  /// is bit-exact and a restored fit's lazily recomputed pyramid matches the
  /// original coefficient-for-coefficient.
  Status Serialize(io::Sink& sink) const;

  /// Restores a fit written by Serialize (filter re-derived from its name);
  /// corrupt input yields a non-OK Result.
  static Result<BinnedWaveletFit> Deserialize(io::Source& source);

  int j0() const { return j0_; }
  int finest_level() const { return finest_level_; }
  size_t count() const { return count_; }

  /// Approximate β̂_{j,k} for j0 <= j < finest_level and periodized
  /// k in [0, 2^j).
  double BetaHat(int j, int k) const;
  /// Approximate α̂_{j0,k} for periodized k in [0, 2^{j0}).
  double AlphaHat(int k) const;

  /// Thresholds the detail levels with `schedule` and reconstructs density
  /// values at the 2^J cell centers (on the original [lo, hi] scale).
  Result<std::vector<double>> EstimateOnGrid(const ThresholdSchedule& schedule,
                                             ThresholdKind kind) const;

  /// Cell centers matching `EstimateOnGrid`.
  std::vector<double> GridCenters() const;

 private:
  BinnedWaveletFit(wavelet::WaveletFilter filter, std::vector<double> counts,
                   int j0, int finest_level, double lo, double width, size_t count)
      : filter_(std::move(filter)),
        counts_(std::move(counts)),
        j0_(j0),
        finest_level_(finest_level),
        lo_(lo),
        width_(width),
        count_(count) {}

  /// Recomputes pyramid_ from counts_ if stale.
  void EnsurePyramid() const;

  wavelet::WaveletFilter filter_;
  std::vector<double> counts_;  // raw per-cell counts, exact integers
  int j0_;
  int finest_level_;
  double lo_;
  double width_;
  size_t count_;
  mutable wavelet::DwtCoefficients pyramid_;  // approximation = level j0
  mutable size_t pyramid_at_count_ = 0;
};

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_BINNED_HPP_
