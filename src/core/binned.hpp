#ifndef WDE_CORE_BINNED_HPP_
#define WDE_CORE_BINNED_HPP_

#include <span>
#include <vector>

#include "core/thresholding.hpp"
#include "util/result.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace core {

/// WaveLab-style fast batch fitting — the computational scheme the paper's
/// own simulations use ("the usual DWT algorithm ... on an equidistant
/// grid"): bin the data into 2^J cells, treat the scaled counts
/// s_k = 2^{J/2}·count_k/n as finest-level scaling coefficients, and run the
/// periodized Mallat pyramid down to j0. Costs O(n + 2^J·L) total versus
/// O(n·levels·L) for the exact streaming path, at the price of two
/// approximations: the O(2^{-J}) binning error and periodized (wrap-around)
/// boundary handling. Exact and binned coefficients agree away from the
/// boundary — asserted by tests.
///
/// The binned path carries no per-coefficient pair sums, so it supports
/// fixed threshold schedules (e.g. `TheoreticalSchedule`) but not the
/// HTCV/STCV criteria; use `WaveletDensityFit` for cross-validation.
class BinnedWaveletFit {
 public:
  /// Bins `data` (values inside [lo, hi]; outside is an error) into 2^J
  /// cells and runs the pyramid. Requires j0 >= 0 and J > j0.
  static Result<BinnedWaveletFit> Fit(const wavelet::WaveletFilter& filter,
                                      std::span<const double> data, int j0,
                                      int finest_level, double lo = 0.0,
                                      double hi = 1.0);

  int j0() const { return j0_; }
  int finest_level() const { return finest_level_; }
  size_t count() const { return count_; }

  /// Approximate β̂_{j,k} for j0 <= j < finest_level and periodized
  /// k in [0, 2^j).
  double BetaHat(int j, int k) const;
  /// Approximate α̂_{j0,k} for periodized k in [0, 2^{j0}).
  double AlphaHat(int k) const;

  /// Thresholds the detail levels with `schedule` and reconstructs density
  /// values at the 2^J cell centers (on the original [lo, hi] scale).
  Result<std::vector<double>> EstimateOnGrid(const ThresholdSchedule& schedule,
                                             ThresholdKind kind) const;

  /// Cell centers matching `EstimateOnGrid`.
  std::vector<double> GridCenters() const;

 private:
  BinnedWaveletFit(wavelet::WaveletFilter filter, wavelet::DwtCoefficients pyramid,
                   int j0, int finest_level, double lo, double width, size_t count)
      : filter_(std::move(filter)),
        pyramid_(std::move(pyramid)),
        j0_(j0),
        finest_level_(finest_level),
        lo_(lo),
        width_(width),
        count_(count) {}

  wavelet::WaveletFilter filter_;
  wavelet::DwtCoefficients pyramid_;  // approximation = level j0
  int j0_;
  int finest_level_;
  double lo_;
  double width_;
  size_t count_;
};

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_BINNED_HPP_
