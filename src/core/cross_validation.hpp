#ifndef WDE_CORE_CROSS_VALIDATION_HPP_
#define WDE_CORE_CROSS_VALIDATION_HPP_

#include <vector>

#include "core/coefficients.hpp"
#include "core/thresholding.hpp"

namespace wde {
namespace core {

/// Outcome of minimizing the level-j cross-validation criterion (paper §5.1):
///   HTCV: CV_j(λ) = Σ_k 1{|β̂_{j,k}| ≥ λ} [β̂² − (2/(n(n−1))) Σ_{i≠h} ψψ]
///   STCV: same + λ² inside the braces.
/// The criterion is piecewise constant (HT) / quadratic (ST) between
/// consecutive coefficient magnitudes, so the exact minimum over λ > 0 is
/// attained on the candidate set {|β̂_{j,k}|} ∪ {+∞}; we scan it via prefix
/// sums over the magnitude-sorted coefficients.
struct LevelCvResult {
  int j = 0;
  double lambda_hat = 0.0;  // +inf when the optimum keeps no coefficient
  double cv_value = 0.0;    // criterion value at the optimum
  int kept = 0;             // coefficients surviving λ̂_j
  int total = 0;            // coefficients at the level
  double max_magnitude = 0.0;  // largest |β̂_{j,k}| at the level

  /// λ̂_j when finite; otherwise the smallest threshold that kills the whole
  /// level (its largest coefficient magnitude). This is the finite quantity
  /// the paper's Figure 3 averages.
  double EffectiveLambda() const;
};

struct CrossValidationResult {
  ThresholdKind kind = ThresholdKind::kHard;
  int j0 = 0;
  int j_star = 0;  // top level scanned (= log2 n in the paper)
  int j1_hat = 0;  // smallest j with CV_j(λ̂_j) = 0 for all j in [ĵ1, j*]
  std::vector<LevelCvResult> levels;  // one entry per j in [j0, j_star]

  const LevelCvResult& Level(int j) const;

  /// Threshold schedule over [j0, j_star] induced by the per-level optima
  /// (levels with empty optima get an infinite threshold).
  ThresholdSchedule Schedule() const;
};

/// Stabilization of the level-wise minimization.
///
/// The literal HTCV criterion is degenerate at pure-noise levels: the
/// coefficients with the largest |β̂| are exactly those whose realized CV
/// term β̂² − 2û is negative (û being the unbiased β² estimate), so the hard
/// criterion keeps a positive fraction of top order-statistic noise at every
/// level and the estimator's risk explodes — the paper's own Table 1/2
/// (HTCV ≈ STCV, mean ĵ1 ≈ 5) cannot arise from the literal formula. STCV
/// does not suffer from this: its +λ² term makes the empty model optimal on
/// noise levels.
///
/// `kUniversalFloor` therefore restricts the candidate thresholds to
/// λ ≥ σ̂ √(2 ln K_j), with σ̂ the Donoho–Johnstone MAD noise estimate from
/// the finest level — the classical stabilization — and is the default for
/// hard thresholding. `kNone` is the literal paper formula (default for
/// soft). See DESIGN.md.
enum class CvStabilization { kNone, kUniversalFloor };

/// Runs the HTCV or STCV procedure with the default stabilization for the
/// kind (hard -> universal floor, soft -> literal).
CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind);

/// Explicit-stabilization variant.
CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind,
                                    CvStabilization stabilization);

/// The Donoho–Johnstone noise scale estimate used by the universal floor:
/// median(|β̂_{j*,k}|)/0.6745 over the finest level.
double FinestLevelNoiseScale(const EmpiricalCoefficients& coefficients);

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_CROSS_VALIDATION_HPP_
