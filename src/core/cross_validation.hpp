#ifndef WDE_CORE_CROSS_VALIDATION_HPP_
#define WDE_CORE_CROSS_VALIDATION_HPP_

#include <cstdint>
#include <vector>

#include "core/coefficients.hpp"
#include "core/thresholding.hpp"

namespace wde {
namespace core {

/// Outcome of minimizing the level-j cross-validation criterion (paper §5.1):
///   HTCV: CV_j(λ) = Σ_k 1{|β̂_{j,k}| ≥ λ} [β̂² − (2/(n(n−1))) Σ_{i≠h} ψψ]
///   STCV: same + λ² inside the braces.
/// The criterion is piecewise constant (HT) / quadratic (ST) between
/// consecutive coefficient magnitudes, so the exact minimum over λ > 0 is
/// attained on the candidate set {|β̂_{j,k}|} ∪ {+∞}; we scan it via prefix
/// sums over the magnitude-sorted coefficients.
struct LevelCvResult {
  int j = 0;
  double lambda_hat = 0.0;  // +inf when the optimum keeps no coefficient
  double cv_value = 0.0;    // criterion value at the optimum
  int kept = 0;             // coefficients surviving λ̂_j
  int total = 0;            // coefficients at the level
  double max_magnitude = 0.0;  // largest |β̂_{j,k}| at the level

  /// λ̂_j when finite; otherwise the smallest threshold that kills the whole
  /// level (its largest coefficient magnitude). This is the finite quantity
  /// the paper's Figure 3 averages.
  double EffectiveLambda() const;
};

struct CrossValidationResult {
  ThresholdKind kind = ThresholdKind::kHard;
  int j0 = 0;
  int j_star = 0;  // top level scanned (= log2 n in the paper)
  int j1_hat = 0;  // smallest j with CV_j(λ̂_j) = 0 for all j in [ĵ1, j*]
  std::vector<LevelCvResult> levels;  // one entry per j in [j0, j_star]

  const LevelCvResult& Level(int j) const;

  /// Threshold schedule over [j0, j_star] induced by the per-level optima
  /// (levels with empty optima get an infinite threshold).
  ThresholdSchedule Schedule() const;
};

/// Stabilization of the level-wise minimization.
///
/// The literal HTCV criterion is degenerate at pure-noise levels: the
/// coefficients with the largest |β̂| are exactly those whose realized CV
/// term β̂² − 2û is negative (û being the unbiased β² estimate), so the hard
/// criterion keeps a positive fraction of top order-statistic noise at every
/// level and the estimator's risk explodes — the paper's own Table 1/2
/// (HTCV ≈ STCV, mean ĵ1 ≈ 5) cannot arise from the literal formula. STCV
/// does not suffer from this: its +λ² term makes the empty model optimal on
/// noise levels.
///
/// `kUniversalFloor` therefore restricts the candidate thresholds to
/// λ ≥ σ̂ √(2 ln K_j), with σ̂ the Donoho–Johnstone MAD noise estimate from
/// the finest level — the classical stabilization — and is the default for
/// hard thresholding. `kNone` is the literal paper formula (default for
/// soft). See DESIGN.md.
enum class CvStabilization { kNone, kUniversalFloor };

/// Per-level warm-start state for repeated CrossValidate calls over a
/// growing coefficient set (the streaming sketch's periodic refit).
///
/// The minimization scans coefficients in the canonical order
/// (|S1| desc, k asc) — a strict total order on the RAW running sums, chosen
/// deliberately over |S1|/n: |β̂| = |S1|/n is a monotone map of |S1| for any
/// fixed n > 0 (so the scan still sweeps magnitudes non-increasingly), but
/// it is n-independent, so the relative order of coefficients whose S1 did
/// not change between refits is exactly preserved and their cached ranking
/// can be reused verbatim. A warm refit then only (a) bitwise-compares S1
/// against the cached copy, (b) sorts the changed coefficients
/// (O(c log c)), and (c) merges them into the filtered cached order — the
/// O(K log K) per-level sort is paid only for cold starts. With a compactly
/// supported basis, a delta of Δ inserts touches O(Δ · support) coefficients
/// per level, so fine levels are mostly unchanged.
struct LevelCvCache {
  std::vector<int32_t> order;   // indices (k − k_lo) in canonical order
  std::vector<double> prev_s1;  // raw S1 sums at the cached fit
};

/// Whole-fit warm-start cache: one LevelCvCache per level in [j0, j_star].
/// Pass to CrossValidate across refits of the SAME coefficient object (the
/// cache self-resets when the level range changes). Never serialized: after
/// a snapshot restore the first refit is a cold start.
struct CvCache {
  int j0 = 0;
  int j_star = 0;
  std::vector<LevelCvCache> levels;
};

/// Runs the HTCV or STCV procedure with the default stabilization for the
/// kind (hard -> universal floor, soft -> literal).
CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind);

/// Explicit-stabilization variant.
CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind,
                                    CvStabilization stabilization);

/// Warm-startable variant: identical result to the cache-less overloads for
/// any cache state (the cache only changes how the canonical order is
/// produced, never the order itself); `cache` may be nullptr. The cache is
/// updated to the current sums on return.
CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind,
                                    CvStabilization stabilization,
                                    CvCache* cache);

/// The Donoho–Johnstone noise scale estimate used by the universal floor:
/// median(|β̂_{j*,k}|)/0.6745 over the finest level.
double FinestLevelNoiseScale(const EmpiricalCoefficients& coefficients);

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_CROSS_VALIDATION_HPP_
