#include "core/coefficients.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "numerics/simd.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace core {

int DefaultPrimaryLevel(size_t n, int vanishing_moments) {
  WDE_CHECK_GT(n, 1u);
  const double raw = std::log(static_cast<double>(n)) /
                     (1.0 + static_cast<double>(vanishing_moments));
  int j0 = static_cast<int>(std::floor(raw)) + 1;  // smallest integer > raw
  return std::max(j0, 0);
}

int DefaultTopLevel(size_t n) {
  WDE_CHECK_GT(n, 1u);
  int j = 0;
  while ((n >> (j + 1)) > 0) ++j;
  return j;
}

EmpiricalCoefficients::EmpiricalCoefficients(wavelet::WaveletBasis basis, int j0,
                                             int j_max)
    : basis_(std::move(basis)), j0_(j0), j_max_(j_max) {
  std::vector<memory::ColumnSpec> specs;
  const auto init_level = [this, &specs](int j, bool is_scaling) {
    CoefficientLevel level;
    level.j = j;
    level.is_scaling = is_scaling;
    const wavelet::TranslationWindow window = basis_.LevelWindow(j);
    level.k_lo = window.lo;
    const auto count = static_cast<uint64_t>(window.size());
    specs.push_back({memory::ColumnKind::kF64, count});  // s1
    specs.push_back({memory::ColumnKind::kF64, count});  // s2
    return level;
  };
  scaling_ = init_level(j0_, true);
  details_.reserve(static_cast<size_t>(j_max_ - j0_ + 1));
  for (int j = j0_; j <= j_max_; ++j) details_.push_back(init_level(j, false));
  sums_ = memory::Arena::Create(specs);  // zero-initialized
  BindLevels();
}

EmpiricalCoefficients::EmpiricalCoefficients(const EmpiricalCoefficients& other)
    : basis_(other.basis_),
      j0_(other.j0_),
      j_max_(other.j_max_),
      count_(other.count_),
      sums_(other.sums_),  // CoW share
      scaling_(other.scaling_),
      details_(other.details_) {
  BindLevels();
}

EmpiricalCoefficients& EmpiricalCoefficients::operator=(
    const EmpiricalCoefficients& other) {
  if (this != &other) {
    basis_ = other.basis_;
    j0_ = other.j0_;
    j_max_ = other.j_max_;
    count_ = other.count_;
    sums_ = other.sums_;
    scaling_ = other.scaling_;
    details_ = other.details_;
    BindLevels();
  }
  return *this;
}

void EmpiricalCoefficients::BindLevels() {
  // Shallow bind: the spans view the current storage, which may be shared or
  // borrowed. Every mutator funnels through EnsureOwnedSums first, so writes
  // never reach storage another accumulator (or a published view) can see.
  const auto bind = [this](CoefficientLevel* level, size_t column) {
    const std::span<const double> s1 = sums_.F64(column);
    const std::span<const double> s2 = sums_.F64(column + 1);
    level->s1 = {const_cast<double*>(s1.data()), s1.size()};
    level->s2 = {const_cast<double*>(s2.data()), s2.size()};
  };
  bind(&scaling_, 0);
  for (size_t i = 0; i < details_.size(); ++i) bind(&details_[i], 2 + 2 * i);
}

void EmpiricalCoefficients::EnsureOwnedSums() {
  const uint8_t* before = sums_.payload();
  sums_.EnsureWritable();
  if (sums_.payload() != before) BindLevels();
}

Result<EmpiricalCoefficients> EmpiricalCoefficients::Create(
    wavelet::WaveletBasis basis, int j0, int j_max) {
  if (j0 < 0 || j_max < j0 || j_max > 26) {
    return Status::InvalidArgument(
        Format("invalid level range [%d, %d]", j0, j_max));
  }
  return EmpiricalCoefficients(std::move(basis), j0, j_max);
}

void EmpiricalCoefficients::AddToLevel(CoefficientLevel* level, double x) {
  const wavelet::TranslationWindow window = basis_.PointWindow(level->j, x);
  for (int k = window.lo; k <= window.hi; ++k) {
    if (!level->Contains(k)) continue;
    const double value = level->is_scaling ? basis_.PhiJk(level->j, k, x)
                                           : basis_.PsiJk(level->j, k, x);
    const size_t idx = static_cast<size_t>(k - level->k_lo);
    level->s1[idx] += value;
    level->s2[idx] += value * value;
  }
}

void EmpiricalCoefficients::Add(double x) {
  WDE_CHECK(x >= 0.0 && x <= 1.0, "observation outside the unit interval");
  EnsureOwnedSums();
  AddToLevel(&scaling_, x);
  for (CoefficientLevel& level : details_) AddToLevel(&level, x);
  ++count_;
}

void EmpiricalCoefficients::AccumulateLevel(CoefficientLevel* level,
                                            std::span<const double> xs) {
  // The point window is always inside the level window (PointWindow clamps),
  // and the level arrays cover the whole level window, so no Contains() check
  // is needed here. Accumulation order per (k) slot matches the scalar path:
  // samples in stream order.
  const wavelet::ScaledLevelEvaluator eval =
      level->is_scaling ? basis_.PhiLevel(level->j) : basis_.PsiLevel(level->j);
  double* s1 = level->s1.data();
  double* s2 = level->s2.data();
  const int k_lo = level->k_lo;
  for (double x : xs) {
    eval.AccumulateValueAndSquare(x, k_lo, s1, s2);
  }
}

void EmpiricalCoefficients::AddAll(std::span<const double> xs) {
  if (xs.empty()) return;  // skip the per-level evaluator setup entirely
  for (double x : xs) {
    WDE_CHECK(x >= 0.0 && x <= 1.0, "observation outside the unit interval");
  }
  EnsureOwnedSums();
  AccumulateLevel(&scaling_, xs);
  for (CoefficientLevel& level : details_) AccumulateLevel(&level, xs);
  count_ += xs.size();
}

Status EmpiricalCoefficients::Merge(const EmpiricalCoefficients& other) {
  if (&other == this) {
    return Status::InvalidArgument("cannot merge an accumulator into itself");
  }
  if (j0_ != other.j0_ || j_max_ != other.j_max_) {
    return Status::FailedPrecondition(
        Format("level range mismatch: [%d, %d] vs [%d, %d]", j0_, j_max_,
               other.j0_, other.j_max_));
  }
  // Same filter ⇒ same basis functions ⇒ the sums estimate the same
  // coefficients. Compared by value: two bases built from equal filters have
  // identical level windows, which the element-wise add below relies on.
  // (Table resolution is not encoded in the sums; accumulators built at
  // different resolutions are the caller's error and cannot be detected.)
  const wavelet::WaveletFilter& f = basis_.filter();
  const wavelet::WaveletFilter& g = other.basis_.filter();
  if (f.name() != g.name() || f.h() != g.h()) {
    return Status::FailedPrecondition(
        Format("wavelet filter mismatch: %s vs %s", f.name().c_str(),
               g.name().c_str()));
  }
  if (other.count_ == 0) return Status::OK();  // exact (bitwise) no-op
  EnsureOwnedSums();
  const auto merge_level = [](CoefficientLevel* into, const CoefficientLevel& from) {
    WDE_CHECK_EQ(into->k_lo, from.k_lo, "merge: level window origin mismatch");
    WDE_CHECK_EQ(into->size(), from.size(), "merge: level window size mismatch");
    // Independent element-wise adds over flat aligned columns: vectorizes
    // without reassociating any per-slot sum.
    double* s1 = into->s1.data();
    double* s2 = into->s2.data();
    const double* f1 = from.s1.data();
    const double* f2 = from.s2.data();
    const size_t n = into->s1.size();
    WDE_SIMD_LOOP
    for (size_t i = 0; i < n; ++i) {
      s1[i] += f1[i];
      s2[i] += f2[i];
    }
  };
  merge_level(&scaling_, other.scaling_);
  for (size_t i = 0; i < details_.size(); ++i) {
    merge_level(&details_[i], other.details_[i]);
  }
  count_ += other.count_;
  return Status::OK();
}

Status SerializeBasisId(const wavelet::WaveletBasis& basis, io::Sink& sink) {
  WDE_RETURN_IF_ERROR(io::WriteString(sink, basis.filter().name()));
  return io::WriteU32(sink, static_cast<uint32_t>(basis.table_levels()));
}

Result<wavelet::WaveletBasis> DeserializeBasisId(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const std::string name, io::ReadString(source, 64));
  WDE_ASSIGN_OR_RETURN(const uint32_t table_levels, io::ReadU32(source));
  if (table_levels > 20) {
    return Status::InvalidArgument("corrupt basis table resolution");
  }
  Result<wavelet::WaveletFilter> filter = wavelet::WaveletFilter::FromName(name);
  if (!filter.ok()) return filter.status();
  return wavelet::WaveletBasis::Create(*filter, static_cast<int>(table_levels));
}

namespace {

Status SerializeLevel(const CoefficientLevel& level, io::Sink& sink) {
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.k_lo));
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, level.s1));
  return io::WriteDoubleVector(sink, level.s2);
}

/// Reads one level's sums into `level`, which already carries the window
/// geometry re-derived from the basis; serialized geometry must agree.
Status DeserializeLevelInto(io::Source& source, CoefficientLevel* level) {
  WDE_ASSIGN_OR_RETURN(const int32_t k_lo, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> s1, io::ReadDoubleVector(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> s2, io::ReadDoubleVector(source));
  if (k_lo != level->k_lo || s1.size() != level->s1.size() ||
      s2.size() != level->s2.size()) {
    return Status::InvalidArgument(
        Format("corrupt coefficient level j=%d: window mismatch", level->j));
  }
  std::copy(s1.begin(), s1.end(), level->s1.begin());
  std::copy(s2.begin(), s2.end(), level->s2.begin());
  return Status::OK();
}

}  // namespace

Status EmpiricalCoefficients::Serialize(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(SerializeBasisId(basis_, sink));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, j0_));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, j_max_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, count_));
  WDE_RETURN_IF_ERROR(SerializeLevel(scaling_, sink));
  for (const CoefficientLevel& level : details_) {
    WDE_RETURN_IF_ERROR(SerializeLevel(level, sink));
  }
  return Status::OK();
}

Result<EmpiricalCoefficients> EmpiricalCoefficients::Deserialize(
    io::Source& source) {
  WDE_ASSIGN_OR_RETURN(wavelet::WaveletBasis basis, DeserializeBasisId(source));
  WDE_ASSIGN_OR_RETURN(const int32_t j0, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(const int32_t j_max, io::ReadI32(source));
  // Create re-validates the level range, so hostile values cannot size the
  // windows; the constructed accumulator then defines the expected geometry.
  Result<EmpiricalCoefficients> coeffs = Create(std::move(basis), j0, j_max);
  if (!coeffs.ok()) return coeffs.status();
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(source));
  WDE_RETURN_IF_ERROR(DeserializeLevelInto(source, &coeffs->scaling_));
  for (CoefficientLevel& level : coeffs->details_) {
    WDE_RETURN_IF_ERROR(DeserializeLevelInto(source, &level));
  }
  coeffs->count_ = static_cast<size_t>(count);
  return coeffs;
}

Status EmpiricalCoefficients::RestoreSums(
    uint64_t count, std::span<const std::span<const double>> sums) {
  if (sums.size() != 2 * (details_.size() + 1)) {
    return Status::InvalidArgument(
        Format("restored sums carry %zu columns, accumulator has %zu",
               sums.size(), 2 * (details_.size() + 1)));
  }
  const auto check_level = [&sums](const CoefficientLevel& level,
                                   size_t column) {
    return sums[column].size() == level.s1.size() &&
           sums[column + 1].size() == level.s2.size();
  };
  bool sizes_ok = check_level(scaling_, 0);
  for (size_t i = 0; i < details_.size(); ++i) {
    sizes_ok = sizes_ok && check_level(details_[i], 2 + 2 * i);
  }
  if (!sizes_ok) {
    return Status::InvalidArgument(
        "restored sums do not match the level geometry of this basis");
  }
  EnsureOwnedSums();
  const auto fill_level = [&sums](CoefficientLevel* level, size_t column) {
    std::copy(sums[column].begin(), sums[column].end(), level->s1.begin());
    std::copy(sums[column + 1].begin(), sums[column + 1].end(),
              level->s2.begin());
  };
  fill_level(&scaling_, 0);
  for (size_t i = 0; i < details_.size(); ++i) {
    fill_level(&details_[i], 2 + 2 * i);
  }
  count_ = static_cast<size_t>(count);
  return Status::OK();
}

const CoefficientLevel& EmpiricalCoefficients::detail_level(int j) const {
  WDE_CHECK(j >= j0_ && j <= j_max_, "detail level out of range");
  return details_[static_cast<size_t>(j - j0_)];
}

double EmpiricalCoefficients::AlphaHat(int k) const {
  WDE_CHECK_GT(count_, 0u);
  if (!scaling_.Contains(k)) return 0.0;
  return scaling_.s1[static_cast<size_t>(k - scaling_.k_lo)] /
         static_cast<double>(count_);
}

double EmpiricalCoefficients::BetaHat(int j, int k) const {
  WDE_CHECK_GT(count_, 0u);
  const CoefficientLevel& level = detail_level(j);
  if (!level.Contains(k)) return 0.0;
  return level.s1[static_cast<size_t>(k - level.k_lo)] / static_cast<double>(count_);
}

double EmpiricalCoefficients::CrossValidationTerm(int j, int k) const {
  WDE_CHECK_GE(count_, 2u, "CV terms need at least two observations");
  const CoefficientLevel& level = detail_level(j);
  if (!level.Contains(k)) return 0.0;
  const size_t idx = static_cast<size_t>(k - level.k_lo);
  const double n = static_cast<double>(count_);
  const double s1 = level.s1[idx];
  const double s2 = level.s2[idx];
  const double beta = s1 / n;
  return beta * beta - 2.0 * (s1 * s1 - s2) / (n * (n - 1.0));
}

}  // namespace core
}  // namespace wde
