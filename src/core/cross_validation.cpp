#include "core/cross_validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace wde {
namespace core {
namespace {

struct RankedCoefficient {
  double magnitude;  // |β̂_{j,k}|
  double cv_term;    // β̂² − 2(S1² − S2)/(n(n−1))
};

LevelCvResult MinimizeLevel(const EmpiricalCoefficients& coefficients, int j,
                            ThresholdKind kind, double lambda_floor) {
  const CoefficientLevel& level = coefficients.detail_level(j);
  const double n = static_cast<double>(coefficients.count());

  std::vector<RankedCoefficient> ranked;
  ranked.reserve(level.s1.size());
  for (int k = level.k_lo; k <= level.k_hi(); ++k) {
    RankedCoefficient rc;
    rc.magnitude = std::fabs(level.s1[static_cast<size_t>(k - level.k_lo)] / n);
    rc.cv_term = coefficients.CrossValidationTerm(j, k);
    ranked.push_back(rc);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedCoefficient& a, const RankedCoefficient& b) {
              return a.magnitude > b.magnitude;
            });

  // Candidate m = number of kept coefficients (the m largest magnitudes).
  // m = 0 corresponds to λ = +inf with criterion value 0. A stabilization
  // floor truncates the candidate set: only thresholds λ = |β̂|_(m) at or
  // above the floor are eligible.
  double best_value = 0.0;
  int best_m = 0;
  double prefix = 0.0;
  for (size_t m = 1; m <= ranked.size(); ++m) {
    const double lambda = ranked[m - 1].magnitude;
    if (lambda == 0.0) break;  // zero coefficients cannot be "kept" by |β̂| ≥ λ > 0
    if (lambda < lambda_floor) break;
    prefix += ranked[m - 1].cv_term;
    double value = prefix;
    if (kind == ThresholdKind::kSoft) {
      value += static_cast<double>(m) * lambda * lambda;
    }
    if (value < best_value) {
      best_value = value;
      best_m = static_cast<int>(m);
    }
  }

  LevelCvResult out;
  out.j = j;
  out.total = level.size();
  out.kept = best_m;
  out.cv_value = best_value;
  out.lambda_hat = best_m > 0 ? ranked[static_cast<size_t>(best_m - 1)].magnitude
                              : std::numeric_limits<double>::infinity();
  out.max_magnitude = ranked.empty() ? 0.0 : ranked.front().magnitude;
  return out;
}

}  // namespace

double LevelCvResult::EffectiveLambda() const {
  return std::isfinite(lambda_hat) ? lambda_hat : max_magnitude;
}

const LevelCvResult& CrossValidationResult::Level(int j) const {
  WDE_CHECK(j >= j0 && j <= j_star, "level outside the CV range");
  return levels[static_cast<size_t>(j - j0)];
}

ThresholdSchedule CrossValidationResult::Schedule() const {
  ThresholdSchedule schedule;
  schedule.j0 = j0;
  schedule.lambda.reserve(levels.size());
  for (const LevelCvResult& level : levels) schedule.lambda.push_back(level.lambda_hat);
  return schedule;
}

double FinestLevelNoiseScale(const EmpiricalCoefficients& coefficients) {
  const CoefficientLevel& finest = coefficients.detail_level(coefficients.j_max());
  const double n = static_cast<double>(coefficients.count());
  std::vector<double> magnitudes;
  magnitudes.reserve(finest.s1.size());
  for (double s1 : finest.s1) magnitudes.push_back(std::fabs(s1 / n));
  std::sort(magnitudes.begin(), magnitudes.end());
  const double median = magnitudes.empty() ? 0.0 : magnitudes[magnitudes.size() / 2];
  return median / 0.6745;
}

namespace {

/// Level-wise universal floor √(2 ln K_j) · σ̂_j. Coefficient noise in
/// density estimation is heteroscedastic — Var(β̂_{j,k}) ≈ ∫ψ²_{j,k} f / n
/// varies with the local density level — so σ̂_j is the *largest*
/// per-coefficient standard error √(S2_k)/n on the level: the floor has to
/// hold in the highest-variance region, which is where spurious hard-kept
/// coefficients concentrate. This is the data-driven analogue of the paper's
/// worst-case constant K in λ_j = K √(j/n) (√(2 ln K_j) grows like √j).
double UniversalFloor(const EmpiricalCoefficients& coefficients, int j) {
  const CoefficientLevel& level = coefficients.detail_level(j);
  const double n = static_cast<double>(coefficients.count());
  double max_s2 = 0.0;
  for (double s2 : level.s2) max_s2 = std::max(max_s2, s2);
  const double sigma = std::sqrt(max_s2) / n;
  const double k_j = std::max(2.0, static_cast<double>(level.size()));
  return sigma * std::sqrt(2.0 * std::log(k_j));
}

}  // namespace

CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind) {
  return CrossValidate(coefficients, kind,
                       kind == ThresholdKind::kHard
                           ? CvStabilization::kUniversalFloor
                           : CvStabilization::kNone);
}

CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind,
                                    CvStabilization stabilization) {
  WDE_CHECK_GE(coefficients.count(), 2u, "CV needs at least two observations");
  CrossValidationResult out;
  out.kind = kind;
  out.j0 = coefficients.j0();
  out.j_star = coefficients.j_max();
  for (int j = out.j0; j <= out.j_star; ++j) {
    const double floor = stabilization == CvStabilization::kUniversalFloor
                             ? UniversalFloor(coefficients, j)
                             : 0.0;
    out.levels.push_back(MinimizeLevel(coefficients, j, kind, floor));
  }
  // ĵ1: smallest level such that every level from it up to j* selects the
  // empty model (CV_j(λ̂_j) = 0). If even j* keeps coefficients, ĵ1 = j*.
  int j1 = out.j_star;
  for (int j = out.j_star; j >= out.j0; --j) {
    if (out.Level(j).kept > 0) break;
    j1 = j;
  }
  out.j1_hat = j1;
  return out;
}

}  // namespace core
}  // namespace wde
