#include "core/cross_validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>

#include "util/check.hpp"

namespace wde {
namespace core {
namespace {

/// The canonical coefficient ranking of one level: indices i = k − k_lo
/// ordered by (|S1[i]| desc, i asc) — a strict total order on the raw
/// running sums (see the LevelCvCache comment for why raw S1, not |S1|/n:
/// |S1|/n is monotone in |S1| for fixed n, so this order also sweeps the
/// magnitudes |β̂| non-increasingly, but it is reusable across refits).
/// The k-ascending tie-break replaces the previous unstable sort's
/// unspecified tie order, making the ranking — and therefore the CV optimum
/// at tied magnitudes — a deterministic function of the sums alone.
struct CanonicalLess {
  std::span<const double> s1;
  bool operator()(int32_t a, int32_t b) const {
    const double ma = std::fabs(s1[static_cast<size_t>(a)]);
    const double mb = std::fabs(s1[static_cast<size_t>(b)]);
    if (ma != mb) return ma > mb;
    return a < b;
  }
};

/// Produces the canonical ranking, warm-starting from `cache` when it holds
/// the previous refit's state for this level: coefficients whose S1 is
/// bitwise-unchanged keep their cached relative order (the comparator reads
/// only S1 and the index, both unchanged), so only the changed ones are
/// sorted and merged back in. Updates the cache in place.
std::vector<int32_t> CanonicalOrder(std::span<const double> s1,
                                    LevelCvCache* cache) {
  const size_t size = s1.size();
  const CanonicalLess less{s1};
  std::vector<int32_t> order;
  const bool warm = cache != nullptr && cache->prev_s1.size() == size &&
                    cache->order.size() == size;
  if (warm) {
    std::vector<int32_t> changed;
    for (size_t i = 0; i < size; ++i) {
      if (!(s1[i] == cache->prev_s1[i])) changed.push_back(static_cast<int32_t>(i));
    }
    if (changed.empty()) {
      order = cache->order;
    } else {
      std::vector<char> is_changed(size, 0);
      for (int32_t i : changed) is_changed[static_cast<size_t>(i)] = 1;
      std::vector<int32_t> unchanged;
      unchanged.reserve(size - changed.size());
      for (int32_t i : cache->order) {
        if (is_changed[static_cast<size_t>(i)] == 0) unchanged.push_back(i);
      }
      std::sort(changed.begin(), changed.end(), less);
      order.resize(size);
      std::merge(unchanged.begin(), unchanged.end(), changed.begin(),
                 changed.end(), order.begin(), less);
    }
  } else {
    order.resize(size);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), less);
  }
  if (cache != nullptr) {
    cache->order = order;
    cache->prev_s1.assign(s1.begin(), s1.end());
  }
  return order;
}

LevelCvResult MinimizeLevel(const EmpiricalCoefficients& coefficients, int j,
                            ThresholdKind kind, double lambda_floor,
                            LevelCvCache* cache) {
  const CoefficientLevel& level = coefficients.detail_level(j);
  const double n = static_cast<double>(coefficients.count());
  const std::vector<int32_t> order = CanonicalOrder(level.s1, cache);

  // Candidate m = number of kept coefficients (the m largest magnitudes).
  // m = 0 corresponds to λ = +inf with criterion value 0. A stabilization
  // floor truncates the candidate set: only thresholds λ = |β̂|_(m) at or
  // above the floor are eligible. CV terms are evaluated lazily in ranked
  // order, so the scan stops paying for them at the first break.
  double best_value = 0.0;
  int best_m = 0;
  double lambda_best = std::numeric_limits<double>::infinity();
  double prefix = 0.0;
  for (size_t m = 1; m <= order.size(); ++m) {
    const auto i = static_cast<size_t>(order[m - 1]);
    const double lambda = std::fabs(level.s1[i] / n);
    if (lambda == 0.0) break;  // zero coefficients cannot be "kept" by |β̂| ≥ λ > 0
    if (lambda < lambda_floor) break;
    prefix += coefficients.CrossValidationTerm(
        j, level.k_lo + static_cast<int>(i));
    double value = prefix;
    if (kind == ThresholdKind::kSoft) {
      value += static_cast<double>(m) * lambda * lambda;
    }
    if (value < best_value) {
      best_value = value;
      best_m = static_cast<int>(m);
      lambda_best = lambda;
    }
  }

  LevelCvResult out;
  out.j = j;
  out.total = level.size();
  out.kept = best_m;
  out.cv_value = best_value;
  out.lambda_hat = lambda_best;
  out.max_magnitude =
      order.empty()
          ? 0.0
          : std::fabs(level.s1[static_cast<size_t>(order.front())] / n);
  return out;
}

}  // namespace

double LevelCvResult::EffectiveLambda() const {
  return std::isfinite(lambda_hat) ? lambda_hat : max_magnitude;
}

const LevelCvResult& CrossValidationResult::Level(int j) const {
  WDE_CHECK(j >= j0 && j <= j_star, "level outside the CV range");
  return levels[static_cast<size_t>(j - j0)];
}

ThresholdSchedule CrossValidationResult::Schedule() const {
  ThresholdSchedule schedule;
  schedule.j0 = j0;
  schedule.lambda.reserve(levels.size());
  for (const LevelCvResult& level : levels) schedule.lambda.push_back(level.lambda_hat);
  return schedule;
}

double FinestLevelNoiseScale(const EmpiricalCoefficients& coefficients) {
  const CoefficientLevel& finest = coefficients.detail_level(coefficients.j_max());
  const double n = static_cast<double>(coefficients.count());
  std::vector<double> magnitudes;
  magnitudes.reserve(finest.s1.size());
  for (double s1 : finest.s1) magnitudes.push_back(std::fabs(s1 / n));
  std::sort(magnitudes.begin(), magnitudes.end());
  const double median = magnitudes.empty() ? 0.0 : magnitudes[magnitudes.size() / 2];
  return median / 0.6745;
}

namespace {

/// Level-wise universal floor √(2 ln K_j) · σ̂_j. Coefficient noise in
/// density estimation is heteroscedastic — Var(β̂_{j,k}) ≈ ∫ψ²_{j,k} f / n
/// varies with the local density level — so σ̂_j is the *largest*
/// per-coefficient standard error √(S2_k)/n on the level: the floor has to
/// hold in the highest-variance region, which is where spurious hard-kept
/// coefficients concentrate. This is the data-driven analogue of the paper's
/// worst-case constant K in λ_j = K √(j/n) (√(2 ln K_j) grows like √j).
double UniversalFloor(const EmpiricalCoefficients& coefficients, int j) {
  const CoefficientLevel& level = coefficients.detail_level(j);
  const double n = static_cast<double>(coefficients.count());
  double max_s2 = 0.0;
  for (double s2 : level.s2) max_s2 = std::max(max_s2, s2);
  const double sigma = std::sqrt(max_s2) / n;
  const double k_j = std::max(2.0, static_cast<double>(level.size()));
  return sigma * std::sqrt(2.0 * std::log(k_j));
}

}  // namespace

CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind) {
  return CrossValidate(coefficients, kind,
                       kind == ThresholdKind::kHard
                           ? CvStabilization::kUniversalFloor
                           : CvStabilization::kNone);
}

CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind,
                                    CvStabilization stabilization) {
  return CrossValidate(coefficients, kind, stabilization, nullptr);
}

CrossValidationResult CrossValidate(const EmpiricalCoefficients& coefficients,
                                    ThresholdKind kind,
                                    CvStabilization stabilization,
                                    CvCache* cache) {
  WDE_CHECK_GE(coefficients.count(), 2u, "CV needs at least two observations");
  CrossValidationResult out;
  out.kind = kind;
  out.j0 = coefficients.j0();
  out.j_star = coefficients.j_max();
  if (cache != nullptr &&
      (cache->j0 != out.j0 || cache->j_star != out.j_star ||
       cache->levels.size() !=
           static_cast<size_t>(out.j_star - out.j0 + 1))) {
    // Level range changed (or first use): reset to a cold cache.
    cache->j0 = out.j0;
    cache->j_star = out.j_star;
    cache->levels.assign(static_cast<size_t>(out.j_star - out.j0 + 1),
                         LevelCvCache{});
  }
  for (int j = out.j0; j <= out.j_star; ++j) {
    const double floor = stabilization == CvStabilization::kUniversalFloor
                             ? UniversalFloor(coefficients, j)
                             : 0.0;
    LevelCvCache* level_cache =
        cache != nullptr ? &cache->levels[static_cast<size_t>(j - out.j0)]
                         : nullptr;
    out.levels.push_back(MinimizeLevel(coefficients, j, kind, floor, level_cache));
  }
  // ĵ1: smallest level such that every level from it up to j* selects the
  // empty model (CV_j(λ̂_j) = 0). If even j* keeps coefficients, ĵ1 = j*.
  int j1 = out.j_star;
  for (int j = out.j_star; j >= out.j0; --j) {
    if (out.Level(j).kept > 0) break;
    j1 = j;
  }
  out.j1_hat = j1;
  return out;
}

}  // namespace core
}  // namespace wde
