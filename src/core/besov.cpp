#include "core/besov.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace core {

std::vector<double> LevelCoefficientNorms(const EmpiricalCoefficients& coefficients,
                                          double pi) {
  WDE_CHECK_GE(pi, 1.0);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(coefficients.j_max() - coefficients.j0() + 1));
  for (int j = coefficients.j0(); j <= coefficients.j_max(); ++j) {
    const CoefficientLevel& level = coefficients.detail_level(j);
    double acc = 0.0;
    const double n = static_cast<double>(coefficients.count());
    for (double s1 : level.s1) acc += std::pow(std::fabs(s1 / n), pi);
    out.push_back(acc);
  }
  return out;
}

double BesovSequenceNorm(const EmpiricalCoefficients& coefficients, double s,
                         double pi, double r) {
  WDE_CHECK(pi >= 1.0 && r >= 1.0 && s > 0.0);
  const double n = static_cast<double>(coefficients.count());
  WDE_CHECK_GT(coefficients.count(), 0u);

  double alpha_norm = 0.0;
  for (double s1 : coefficients.scaling_level().s1) {
    alpha_norm += std::pow(std::fabs(s1 / n), pi);
  }
  alpha_norm = std::pow(alpha_norm, 1.0 / pi);

  const std::vector<double> level_norms = LevelCoefficientNorms(coefficients, pi);
  double detail_acc = 0.0;
  for (size_t i = 0; i < level_norms.size(); ++i) {
    const int j = coefficients.j0() + static_cast<int>(i);
    const double weight =
        std::exp2(static_cast<double>(j) * (s * pi + pi / 2.0 - 1.0));
    detail_acc += std::pow(weight * level_norms[i], r / pi);
  }
  return alpha_norm + std::pow(detail_acc, 1.0 / r);
}

}  // namespace core
}  // namespace wde
