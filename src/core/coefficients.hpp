#ifndef WDE_CORE_COEFFICIENTS_HPP_
#define WDE_CORE_COEFFICIENTS_HPP_

#include <span>
#include <vector>

#include "io/serialize.hpp"
#include "memory/arena.hpp"
#include "util/result.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace core {

/// Per-level running sums for the empirical wavelet coefficients of data on
/// the unit interval. For every translation k the structure maintains
///   S1_k = Σ_i δ_{j,k}(X_i)   and   S2_k = Σ_i δ_{j,k}(X_i)²,
/// where δ is φ (scaling level) or ψ (detail levels). These two sums are
/// sufficient statistics for BOTH the coefficient estimates
/// (β̂_{j,k} = S1_k/n) and the HTCV/STCV cross-validation criteria
/// (which need Σ_{i≠h} δ(X_i)δ(X_h) = S1² − S2), so the whole adaptive
/// estimator is streaming-updatable — the property the selectivity layer
/// builds on.
///
/// The sums are views into the owning accumulator's columnar arena (two
/// 64-byte-aligned columns per level): flat element-wise buffers the merge
/// loop vectorizes over and the snapshot fast path serializes verbatim.
struct CoefficientLevel {
  int j = 0;
  bool is_scaling = false;
  int k_lo = 0;  // first translation index
  std::span<double> s1;
  std::span<double> s2;

  int size() const { return static_cast<int>(s1.size()); }
  int k_hi() const { return k_lo + size() - 1; }
  bool Contains(int k) const { return k >= k_lo && k <= k_hi(); }
};

/// Empirical coefficients of a sample on [0, 1]: one scaling level j0 and
/// detail levels j0..j_max. Insertion costs O((j_max − j0 + 2) · L) table
/// lookups per sample.
class EmpiricalCoefficients {
 public:
  /// Fails if the level range is invalid.
  static Result<EmpiricalCoefficients> Create(wavelet::WaveletBasis basis, int j0,
                                              int j_max);

  /// Adds one observation; x must lie in [0, 1] (checked).
  void Add(double x);

  /// Batch entry: equivalent to calling Add(x) for each x in order — the
  /// running sums come out bit-identical — but runs one pass per level with
  /// the scale/translate/table setup hoisted out of the sample loop, instead
  /// of one pass per sample. This is the streaming hot path; see
  /// `perf_estimator` for the scalar-vs-batch throughput numbers. An empty
  /// span is an explicit no-op.
  void AddAll(std::span<const double> xs);

  /// Folds another accumulator into this one: element-wise S1/S2 sums and
  /// count addition. Because (S1, S2, n) are additive sufficient statistics,
  /// Merge of accumulators over disjoint sub-streams equals one accumulator
  /// over the concatenated stream up to floating-point summation order
  /// (each slot adds a per-shard subtotal instead of per-sample terms), so
  /// coefficient estimates agree to ~1e-12 relative — the mergeability
  /// contract the sharded selectivity engine is built on. Fails (leaving
  /// this accumulator untouched) when the wavelet filter or the [j0, j_max]
  /// level range differ; merging an empty accumulator is an exact no-op.
  Status Merge(const EmpiricalCoefficients& other);

  /// Writes the complete accumulator state — the basis identity (filter name
  /// + table resolution), the level range, and every level's S1/S2 running
  /// sums — as the io module's endianness-explicit primitives. The sums
  /// travel as IEEE bit patterns, so Serialize→Deserialize round trips are
  /// bit-exact and a restored accumulator is merge-compatible with (and
  /// answers identically to) the original.
  Status Serialize(io::Sink& sink) const;

  /// Restores an accumulator written by Serialize: rebuilds the basis from
  /// its identity, re-derives the level windows, and validates the stored
  /// level geometry against them — corrupt or truncated input yields a
  /// non-OK Result, never UB.
  static Result<EmpiricalCoefficients> Deserialize(io::Source& source);

  size_t count() const { return count_; }
  int j0() const { return j0_; }
  int j_max() const { return j_max_; }
  const wavelet::WaveletBasis& basis() const { return basis_; }

  const CoefficientLevel& scaling_level() const { return scaling_; }
  /// Detail level j (j0 <= j <= j_max).
  const CoefficientLevel& detail_level(int j) const;

  /// α̂_{j0,k}; 0 for k outside the tracked window.
  double AlphaHat(int k) const;
  /// β̂_{j,k}; 0 for k outside the tracked window.
  double BetaHat(int j, int k) const;

  /// The per-coefficient contribution to the CV criterion (paper §5.1):
  ///   β̂² − 2/(n(n−1)) Σ_{i≠h} ψ_{j,k}(X_i) ψ_{j,k}(X_h)
  /// = β̂² − 2 (S1² − S2)/(n(n−1)).
  double CrossValidationTerm(int j, int k) const;

  /// Copies share the sums arena copy-on-write (publishing an immutable view
  /// of an accumulator costs O(levels), not O(coefficients)); the first
  /// mutation through Add/AddAll/Merge un-shares it.
  EmpiricalCoefficients(const EmpiricalCoefficients& other);
  EmpiricalCoefficients& operator=(const EmpiricalCoefficients& other);
  EmpiricalCoefficients(EmpiricalCoefficients&&) noexcept = default;
  EmpiricalCoefficients& operator=(EmpiricalCoefficients&&) noexcept = default;

  /// Snapshot fast path: overwrites the running sums and count with
  /// persisted values. `sums` holds [scaling.s1, scaling.s2, detail_{j0}.s1,
  /// detail_{j0}.s2, ...]; every span's size must match the level geometry
  /// this accumulator derived from its basis (checked — hostile sizes yield
  /// a Status).
  Status RestoreSums(uint64_t count,
                     std::span<const std::span<const double>> sums);

 private:
  EmpiricalCoefficients(wavelet::WaveletBasis basis, int j0, int j_max);

  /// Un-shares the sums arena (CoW) and rebinds every level's spans; must
  /// run before any mutation of s1/s2.
  void EnsureOwnedSums();
  /// Points the level spans at the current arena storage.
  void BindLevels();

  void AddToLevel(CoefficientLevel* level, double x);
  void AccumulateLevel(CoefficientLevel* level, std::span<const double> xs);

  wavelet::WaveletBasis basis_;
  int j0_;
  int j_max_;
  size_t count_ = 0;
  /// Columns: [scaling s1, scaling s2, detail_{j0} s1, detail_{j0} s2, ...].
  memory::Arena sums_;
  CoefficientLevel scaling_;
  std::vector<CoefficientLevel> details_;  // index j - j0
};

/// The paper's default primary resolution: smallest integer > ln(n)/(1 + N)
/// where N is the wavelet regularity (Theorem 3.1 / §5.1).
int DefaultPrimaryLevel(size_t n, int vanishing_moments);

/// The cross-validation top level j* = log2(n) (§5.1), i.e. floor(log2 n).
int DefaultTopLevel(size_t n);

/// Writes the identity of a basis — filter name + cascade table resolution —
/// so a reader can rebuild bit-identical tables (within one platform; see
/// wavelet::WaveletFilter::FromName). Shared by every core serializer.
Status SerializeBasisId(const wavelet::WaveletBasis& basis, io::Sink& sink);

/// Rebuilds a basis from its serialized identity.
Result<wavelet::WaveletBasis> DeserializeBasisId(io::Source& source);

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_COEFFICIENTS_HPP_
