#include "core/thresholding.hpp"

#include <cmath>

#include "core/coefficients.hpp"
#include "util/check.hpp"

namespace wde {
namespace core {

const char* ThresholdKindName(ThresholdKind kind) {
  switch (kind) {
    case ThresholdKind::kHard:
      return "hard";
    case ThresholdKind::kSoft:
      return "soft";
  }
  return "unknown";
}

double ApplyThreshold(ThresholdKind kind, double beta, double lambda) {
  WDE_DCHECK(lambda >= 0.0);
  const double magnitude = std::fabs(beta);
  switch (kind) {
    case ThresholdKind::kHard:
      return magnitude > lambda ? beta : 0.0;
    case ThresholdKind::kSoft: {
      const double shrunk = magnitude - lambda;
      if (shrunk <= 0.0) return 0.0;
      return beta >= 0.0 ? shrunk : -shrunk;
    }
  }
  return 0.0;
}

double ThresholdSchedule::LevelLambda(int j) const {
  if (j < j0 || j > j_max()) return kKillLevel;
  return lambda[static_cast<size_t>(j - j0)];
}

ThresholdSchedule TheoreticalSchedule(double k_constant, int j0, int j1, size_t n) {
  WDE_CHECK_GE(j1, j0);
  WDE_CHECK_GT(n, 0u);
  WDE_CHECK_GT(k_constant, 0.0);
  ThresholdSchedule schedule;
  schedule.j0 = j0;
  schedule.lambda.resize(static_cast<size_t>(j1 - j0 + 1));
  for (int j = j0; j <= j1; ++j) {
    schedule.lambda[static_cast<size_t>(j - j0)] =
        k_constant * std::sqrt(static_cast<double>(j) / static_cast<double>(n));
  }
  return schedule;
}

int TheoreticalTopLevel(size_t n, double dependence_b, int j0) {
  WDE_CHECK_GT(dependence_b, 0.0);
  const double ln_n = std::log(static_cast<double>(n));
  const double exponent = 2.0 / dependence_b + 3.0;
  const double value =
      static_cast<double>(n) * std::pow(std::max(ln_n, 1.0), -exponent);
  int j1 = value > 1.0 ? static_cast<int>(std::floor(std::log2(value))) : 0;
  j1 = std::max(j1, j0);
  j1 = std::min(j1, DefaultTopLevel(n));
  return j1;
}

}  // namespace core
}  // namespace wde
