#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/optimize.hpp"
#include "numerics/simd.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace core {

double WaveletEstimate::Evaluate(double x) const {
  const double t = (x - lo_) / width_;
  if (t < 0.0 || t > 1.0) return 0.0;
  double acc = 0.0;
  {
    const wavelet::TranslationWindow window = basis_.PointWindow(j0_, t);
    for (int k = window.lo; k <= window.hi; ++k) {
      const int idx = k - scaling_k_lo_;
      if (idx < 0 || idx >= static_cast<int>(alpha_.size())) continue;
      acc += alpha_[static_cast<size_t>(idx)] * basis_.PhiJk(j0_, k, t);
    }
  }
  for (const DetailLevel& level : details_) {
    if (level.kept == 0) continue;
    const wavelet::TranslationWindow window = basis_.PointWindow(level.j, t);
    for (int k = window.lo; k <= window.hi; ++k) {
      const int idx = k - level.k_lo;
      if (idx < 0 || idx >= static_cast<int>(level.theta.size())) continue;
      const double theta = level.theta[static_cast<size_t>(idx)];
      if (theta == 0.0) continue;
      acc += theta * basis_.PsiJk(level.j, k, t);
    }
  }
  return acc / width_;
}

void WaveletEstimate::EvaluateMany(std::span<const double> xs,
                                   std::span<double> out) const {
  WDE_CHECK_EQ(xs.size(), out.size(), "EvaluateMany spans must match");
  const size_t n = xs.size();
  std::vector<double> ts(n);
  const double lo = lo_;
  const double width = width_;
  WDE_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) ts[i] = (xs[i] - lo) / width;
  for (size_t i = 0; i < n; ++i) out[i] = 0.0;
  {
    const wavelet::ScaledLevelEvaluator eval = basis_.PhiLevel(j0_);
    const double* alpha = alpha_.data();
    const int n_alpha = static_cast<int>(alpha_.size());
    const int k_lo = scaling_k_lo_;
    for (size_t i = 0; i < n; ++i) {
      const double t = ts[i];
      if (t < 0.0 || t > 1.0) continue;
      eval.AccumulateWeighted(t, alpha, k_lo, n_alpha, &out[i]);
    }
  }
  for (const DetailLevel& level : details_) {
    if (level.kept == 0) continue;
    const wavelet::ScaledLevelEvaluator eval = basis_.PsiLevel(level.j);
    const double* theta = level.theta.data();
    const int n_theta = static_cast<int>(level.theta.size());
    const int k_lo = level.k_lo;
    for (size_t i = 0; i < n; ++i) {
      const double t = ts[i];
      if (t < 0.0 || t > 1.0) continue;
      eval.AccumulateWeighted(t, theta, k_lo, n_theta, &out[i]);
    }
  }
  // Select instead of branch so the normalization vectorizes; out-of-domain
  // lanes keep their (zero) value exactly as the scalar loop leaves them.
  WDE_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) {
    const double t = ts[i];
    const bool in_domain = t >= 0.0 && t <= 1.0;
    out[i] = in_domain ? out[i] / width : out[i];
  }
}

std::vector<double> WaveletEstimate::EvaluateOnGrid(double lo, double hi,
                                                    size_t points) const {
  WDE_CHECK_GE(points, 2u);
  WDE_CHECK_LT(lo, hi);
  std::vector<double> xs(points);
  const double dx = (hi - lo) / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) xs[i] = lo + dx * static_cast<double>(i);
  std::vector<double> out(points);
  EvaluateMany(xs, out);
  return out;
}

namespace {

/// ∫_{ta}^{tb} δ_{j,k}(t) dt = 2^{-j/2} [Δ(2^j tb − k) − Δ(2^j ta − k)]
/// where Δ is the mother antiderivative.
double ScaledIntegral(double anti_hi, double anti_lo, int j) {
  return (anti_hi - anti_lo) * std::exp2(-0.5 * static_cast<double>(j));
}

}  // namespace

double WaveletEstimate::IntegrateRange(double a, double b) const {
  if (b < a) std::swap(a, b);
  const double ta = std::clamp((a - lo_) / width_, 0.0, 1.0);
  const double tb = std::clamp((b - lo_) / width_, 0.0, 1.0);
  if (tb <= ta) return 0.0;
  const int support = basis_.support_length();
  double acc = 0.0;
  {
    const double scale = std::ldexp(1.0, j0_);
    const int k_first = std::max(scaling_k_lo_,
                                 static_cast<int>(std::ceil(scale * ta)) - support);
    const int k_last =
        std::min(scaling_k_lo_ + static_cast<int>(alpha_.size()) - 1,
                 static_cast<int>(std::floor(scale * tb)));
    for (int k = k_first; k <= k_last; ++k) {
      const double coeff = alpha_[static_cast<size_t>(k - scaling_k_lo_)];
      if (coeff == 0.0) continue;
      acc += coeff * ScaledIntegral(basis_.PhiAntiderivative(scale * tb - k),
                                    basis_.PhiAntiderivative(scale * ta - k), j0_);
    }
  }
  for (const DetailLevel& level : details_) {
    if (level.kept == 0) continue;
    const double scale = std::ldexp(1.0, level.j);
    const int k_first =
        std::max(level.k_lo, static_cast<int>(std::ceil(scale * ta)) - support);
    const int k_last = std::min(level.k_lo + static_cast<int>(level.theta.size()) - 1,
                                static_cast<int>(std::floor(scale * tb)));
    for (int k = k_first; k <= k_last; ++k) {
      const double coeff = level.theta[static_cast<size_t>(k - level.k_lo)];
      if (coeff == 0.0) continue;
      acc += coeff * ScaledIntegral(basis_.PsiAntiderivative(scale * tb - k),
                                    basis_.PsiAntiderivative(scale * ta - k), level.j);
    }
  }
  return acc;
}

void WaveletEstimate::IntegrateRangeMany(std::span<const double> a,
                                         std::span<const double> b,
                                         std::span<double> out) const {
  WDE_CHECK(a.size() == b.size() && a.size() == out.size(),
            "IntegrateRangeMany spans must match");
  const size_t n = a.size();
  std::vector<double> ta(n), tb(n);
  for (size_t i = 0; i < n; ++i) {
    double x = a[i];
    double y = b[i];
    if (y < x) std::swap(x, y);
    ta[i] = std::clamp((x - lo_) / width_, 0.0, 1.0);
    tb[i] = std::clamp((y - lo_) / width_, 0.0, 1.0);
  }
  for (size_t i = 0; i < n; ++i) out[i] = 0.0;
  const int support = basis_.support_length();
  {
    const wavelet::ScaledLevelEvaluator eval = basis_.PhiLevel(j0_);
    const double scale = std::ldexp(1.0, j0_);
    const double factor = std::exp2(-0.5 * static_cast<double>(j0_));
    const double* alpha = alpha_.data();
    const int k_lo = scaling_k_lo_;
    const int k_hi = k_lo + static_cast<int>(alpha_.size()) - 1;
    for (size_t i = 0; i < n; ++i) {
      if (tb[i] <= ta[i]) continue;
      const int k_first =
          std::max(k_lo, static_cast<int>(std::ceil(scale * ta[i])) - support);
      const int k_last = std::min(k_hi, static_cast<int>(std::floor(scale * tb[i])));
      for (int k = k_first; k <= k_last; ++k) {
        const double coeff = alpha[k - k_lo];
        if (coeff == 0.0) continue;
        out[i] += coeff * ((eval.AntiderivativeAt(k, tb[i]) -
                            eval.AntiderivativeAt(k, ta[i])) *
                           factor);
      }
    }
  }
  for (const DetailLevel& level : details_) {
    if (level.kept == 0) continue;
    const wavelet::ScaledLevelEvaluator eval = basis_.PsiLevel(level.j);
    const double scale = std::ldexp(1.0, level.j);
    const double factor = std::exp2(-0.5 * static_cast<double>(level.j));
    const double* theta = level.theta.data();
    const int k_lo = level.k_lo;
    const int k_hi = k_lo + static_cast<int>(level.theta.size()) - 1;
    for (size_t i = 0; i < n; ++i) {
      if (tb[i] <= ta[i]) continue;
      const int k_first =
          std::max(k_lo, static_cast<int>(std::ceil(scale * ta[i])) - support);
      const int k_last = std::min(k_hi, static_cast<int>(std::floor(scale * tb[i])));
      for (int k = k_first; k <= k_last; ++k) {
        const double coeff = theta[k - k_lo];
        if (coeff == 0.0) continue;
        out[i] += coeff * ((eval.AntiderivativeAt(k, tb[i]) -
                            eval.AntiderivativeAt(k, ta[i])) *
                           factor);
      }
    }
  }
}

double WaveletEstimate::TotalMass() const {
  return IntegrateRange(domain_lo(), domain_hi());
}

double WaveletEstimate::Quantile(double u) const {
  WDE_CHECK(u >= 0.0 && u <= 1.0, "quantile level must be in [0,1]");
  if (u <= 0.0) return domain_lo();
  if (u >= 1.0) return domain_hi();
  const double mass = TotalMass();
  WDE_CHECK_GT(mass, 0.0, "cannot take quantiles of a zero-mass estimate");
  return numerics::BisectMonotone(
      [this](double x) { return IntegrateRange(domain_lo(), x); }, u * mass,
      domain_lo(), domain_hi());
}

int WaveletEstimate::j_max() const {
  return details_.empty() ? j0_ - 1 : details_.back().j;
}

double WaveletEstimate::ThresholdedFraction(int j) const {
  for (const DetailLevel& level : details_) {
    if (level.j == j) {
      if (level.theta.empty()) return 1.0;
      return 1.0 -
             static_cast<double>(level.kept) / static_cast<double>(level.theta.size());
    }
  }
  return 1.0;
}

Status WaveletEstimate::Serialize(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, width_));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, j0_));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, scaling_k_lo_));
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, alpha_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, details_.size()));
  for (const DetailLevel& level : details_) {
    WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.j));
    WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.k_lo));
    WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.kept));
    WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, level.theta));
  }
  return Status::OK();
}

Result<WaveletEstimate> WaveletEstimate::Deserialize(
    const wavelet::WaveletBasis& basis, io::Source& source) {
  WaveletEstimate estimate(basis);
  WDE_ASSIGN_OR_RETURN(estimate.lo_, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(estimate.width_, io::ReadDouble(source));
  if (!std::isfinite(estimate.lo_) || !(estimate.width_ > 0.0) ||
      !std::isfinite(estimate.width_)) {
    return Status::InvalidArgument("corrupt estimate domain");
  }
  WDE_ASSIGN_OR_RETURN(estimate.j0_, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(estimate.scaling_k_lo_, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(estimate.alpha_, io::ReadDoubleVector(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t n_details, io::ReadU64(source));
  if (estimate.j0_ < 0 || estimate.j0_ > 26 || n_details > 32) {
    return Status::InvalidArgument("corrupt estimate level structure");
  }
  estimate.details_.reserve(static_cast<size_t>(n_details));
  for (uint64_t i = 0; i < n_details; ++i) {
    DetailLevel level;
    WDE_ASSIGN_OR_RETURN(level.j, io::ReadI32(source));
    WDE_ASSIGN_OR_RETURN(level.k_lo, io::ReadI32(source));
    WDE_ASSIGN_OR_RETURN(level.kept, io::ReadI32(source));
    WDE_ASSIGN_OR_RETURN(level.theta, io::ReadDoubleVector(source));
    if (level.j < 0 || level.j > 26 || level.kept < 0 ||
        static_cast<size_t>(level.kept) > level.theta.size()) {
      return Status::InvalidArgument("corrupt estimate detail level");
    }
    estimate.details_.push_back(std::move(level));
  }
  return estimate;
}

Status WaveletDensityFit::Serialize(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, width_));
  return coefficients_.Serialize(sink);
}

Result<WaveletDensityFit> WaveletDensityFit::Deserialize(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const double lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double width, io::ReadDouble(source));
  if (!std::isfinite(lo) || !(width > 0.0) || !std::isfinite(width)) {
    return Status::InvalidArgument("corrupt fit domain");
  }
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Deserialize(source);
  if (!coeffs.ok()) return coeffs.status();
  return WaveletDensityFit(std::move(coeffs).value(), lo, width);
}

Result<WaveletDensityFit> WaveletDensityFit::Fit(const wavelet::WaveletBasis& basis,
                                                 std::span<const double> data,
                                                 const FitOptions& options) {
  if (data.size() < 2) return Status::InvalidArgument("need at least 2 observations");
  if (!(options.domain_lo < options.domain_hi)) {
    return Status::InvalidArgument("empty estimation domain");
  }
  const int j0 = options.j0 >= 0
                     ? options.j0
                     : DefaultPrimaryLevel(data.size(),
                                           basis.filter().vanishing_moments());
  const int j_max = options.j_max >= 0 ? options.j_max : DefaultTopLevel(data.size());
  if (j_max < j0) {
    return Status::InvalidArgument(Format("j_max %d below j0 %d", j_max, j0));
  }
  Result<WaveletDensityFit> fit =
      CreateStreaming(basis, j0, j_max, options.domain_lo, options.domain_hi);
  if (!fit.ok()) return fit;
  for (double x : data) {
    if (x < options.domain_lo || x > options.domain_hi) {
      return Status::OutOfRange(
          Format("observation %.6g outside domain [%.6g, %.6g]", x,
                 options.domain_lo, options.domain_hi));
    }
  }
  fit->AddBatch(data);
  return fit;
}

Result<WaveletDensityFit> WaveletDensityFit::CreateStreaming(
    const wavelet::WaveletBasis& basis, int j0, int j_max, double domain_lo,
    double domain_hi) {
  if (!(domain_lo < domain_hi)) {
    return Status::InvalidArgument("empty estimation domain");
  }
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(basis, j0, j_max);
  if (!coeffs.ok()) return coeffs.status();
  return WaveletDensityFit(std::move(coeffs).value(), domain_lo,
                           domain_hi - domain_lo);
}

Result<WaveletDensityFit> WaveletDensityFit::FromRestoredSums(
    const wavelet::WaveletBasis& basis, int j0, int j_max, double domain_lo,
    double domain_hi, uint64_t count,
    std::span<const std::span<const double>> sums) {
  if (!(domain_lo < domain_hi)) {
    return Status::InvalidArgument("empty estimation domain");
  }
  // Create re-validates the level range, so hostile j0/j_max cannot size the
  // windows; RestoreSums then checks every span against the re-derived
  // geometry before copying a value.
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(basis, j0, j_max);
  if (!coeffs.ok()) return coeffs.status();
  WDE_RETURN_IF_ERROR(coeffs->RestoreSums(count, sums));
  return WaveletDensityFit(std::move(coeffs).value(), domain_lo,
                           domain_hi - domain_lo);
}

void WaveletDensityFit::Add(double x) {
  const double t = (x - lo_) / width_;
  WDE_CHECK(t >= 0.0 && t <= 1.0, "observation outside the fit domain");
  coefficients_.Add(t);
}

Status WaveletDensityFit::Merge(const WaveletDensityFit& other) {
  if (lo_ != other.lo_ || width_ != other.width_) {
    return Status::FailedPrecondition(
        Format("fit domain mismatch: [%.6g, %.6g] vs [%.6g, %.6g]", lo_,
               lo_ + width_, other.lo_, other.lo_ + other.width_));
  }
  return coefficients_.Merge(other.coefficients_);
}

void WaveletDensityFit::AddBatch(std::span<const double> xs) {
  if (xs.empty()) return;
  std::vector<double> ts(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double t = (xs[i] - lo_) / width_;
    WDE_CHECK(t >= 0.0 && t <= 1.0, "observation outside the fit domain");
    ts[i] = t;
  }
  coefficients_.AddAll(ts);
}

WaveletEstimate WaveletDensityFit::Estimate(const ThresholdSchedule& schedule,
                                            ThresholdKind kind) const {
  WDE_CHECK_GE(count(), 1u, "cannot estimate from an empty fit");
  const double n = static_cast<double>(count());
  WaveletEstimate out(coefficients_.basis());
  out.lo_ = lo_;
  out.width_ = width_;
  out.j0_ = coefficients_.j0();

  const CoefficientLevel& scaling = coefficients_.scaling_level();
  out.scaling_k_lo_ = scaling.k_lo;
  out.alpha_.resize(scaling.s1.size());
  for (size_t i = 0; i < scaling.s1.size(); ++i) out.alpha_[i] = scaling.s1[i] / n;

  const int j_hi = std::min(coefficients_.j_max(), schedule.j_max());
  for (int j = coefficients_.j0(); j <= j_hi; ++j) {
    const CoefficientLevel& level = coefficients_.detail_level(j);
    const double lambda = schedule.LevelLambda(j);
    WaveletEstimate::DetailLevel detail;
    detail.j = j;
    detail.k_lo = level.k_lo;
    detail.theta.resize(level.s1.size());
    for (size_t i = 0; i < level.s1.size(); ++i) {
      const double theta = ApplyThreshold(kind, level.s1[i] / n, lambda);
      detail.theta[i] = theta;
      if (theta != 0.0) ++detail.kept;
    }
    out.details_.push_back(std::move(detail));
  }
  return out;
}

WaveletEstimate WaveletDensityFit::LinearEstimate(int j1) const {
  ThresholdSchedule schedule;
  schedule.j0 = coefficients_.j0();
  const int j_hi = std::min(j1, coefficients_.j_max());
  if (j_hi >= schedule.j0) {
    schedule.lambda.assign(static_cast<size_t>(j_hi - schedule.j0 + 1), 0.0);
  }
  return Estimate(schedule, ThresholdKind::kHard);
}

}  // namespace core
}  // namespace wde
