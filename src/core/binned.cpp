#include "core/binned.hpp"

#include <algorithm>
#include <cmath>

#include "util/string_util.hpp"

namespace wde {
namespace core {

namespace {

/// Bins `data` into `counts` (cells spanning [lo, lo + width]); returns an
/// error without touching `counts` if any value falls outside.
Status BinInto(std::span<const double> data, double lo, double width,
               std::vector<double>* counts) {
  const size_t cells = counts->size();
  for (double x : data) {
    const double t = (x - lo) / width;
    if (t < 0.0 || t > 1.0) {
      return Status::OutOfRange(Format("observation %.6g outside [%.6g, %.6g]",
                                       x, lo, lo + width));
    }
  }
  for (double x : data) {
    const double t = (x - lo) / width;
    const size_t cell = std::min(cells - 1, static_cast<size_t>(t * cells));
    (*counts)[cell] += 1.0;
  }
  return Status::OK();
}

}  // namespace

Result<BinnedWaveletFit> BinnedWaveletFit::Fit(const wavelet::WaveletFilter& filter,
                                               std::span<const double> data, int j0,
                                               int finest_level, double lo,
                                               double hi) {
  if (data.empty()) return Status::InvalidArgument("no data to bin");
  if (j0 < 0 || finest_level <= j0 || finest_level > 24) {
    return Status::InvalidArgument(
        Format("invalid level range [%d, %d)", j0, finest_level));
  }
  if (!(lo < hi)) return Status::InvalidArgument("empty domain");

  const size_t cells = 1ULL << finest_level;
  const double width = hi - lo;
  std::vector<double> counts(cells, 0.0);
  Status binned = BinInto(data, lo, width, &counts);
  if (!binned.ok()) return binned;
  return BinnedWaveletFit(filter, std::move(counts), j0, finest_level, lo, width,
                          data.size());
}

Status BinnedWaveletFit::AddBatch(std::span<const double> data) {
  if (data.empty()) return Status::OK();
  Status binned = BinInto(data, lo_, width_, &counts_);
  if (!binned.ok()) return binned;
  count_ += data.size();
  return Status::OK();
}

Status BinnedWaveletFit::Merge(const BinnedWaveletFit& other) {
  if (&other == this) {
    return Status::InvalidArgument("cannot merge a fit into itself");
  }
  if (filter_.name() != other.filter_.name() || filter_.h() != other.filter_.h()) {
    return Status::FailedPrecondition(
        Format("wavelet filter mismatch: %s vs %s", filter_.name().c_str(),
               other.filter_.name().c_str()));
  }
  if (j0_ != other.j0_ || finest_level_ != other.finest_level_) {
    return Status::FailedPrecondition(
        Format("level range mismatch: [%d, %d) vs [%d, %d)", j0_, finest_level_,
               other.j0_, other.finest_level_));
  }
  if (lo_ != other.lo_ || width_ != other.width_) {
    return Status::FailedPrecondition("binning domain mismatch");
  }
  if (other.count_ == 0) return Status::OK();  // exact no-op
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  // The count change marks the cached pyramid stale; EnsurePyramid rebuilds
  // from the merged integer counts at the next coefficient read.
  return Status::OK();
}

Status BinnedWaveletFit::Serialize(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteString(sink, filter_.name()));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, j0_));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, finest_level_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, lo_));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, width_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, count_));
  return io::WriteDoubleVector(sink, counts_);
}

Result<BinnedWaveletFit> BinnedWaveletFit::Deserialize(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const std::string filter_name, io::ReadString(source, 64));
  Result<wavelet::WaveletFilter> filter = wavelet::WaveletFilter::FromName(filter_name);
  if (!filter.ok()) return filter.status();
  WDE_ASSIGN_OR_RETURN(const int32_t j0, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(const int32_t finest_level, io::ReadI32(source));
  if (j0 < 0 || finest_level <= j0 || finest_level > 24) {
    return Status::InvalidArgument("corrupt binned fit level range");
  }
  WDE_ASSIGN_OR_RETURN(const double lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const double width, io::ReadDouble(source));
  if (!std::isfinite(lo) || !(width > 0.0) || !std::isfinite(width)) {
    return Status::InvalidArgument("corrupt binned fit domain");
  }
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> counts, io::ReadDoubleVector(source));
  if (counts.size() != (1ULL << finest_level)) {
    return Status::InvalidArgument("corrupt binned fit cell count");
  }
  return BinnedWaveletFit(std::move(filter).value(), std::move(counts), j0,
                          finest_level, lo, width, static_cast<size_t>(count));
}

void BinnedWaveletFit::EnsurePyramid() const {
  if (pyramid_at_count_ == count_) return;
  // Scaled counts s_k = 2^{J/2}·count_k/n are the finest-level scaling
  // coefficients; bin counts are exact integers, so recomputing from the raw
  // counts gives the same coefficients as a one-shot fit of the whole stream.
  const double scale = std::exp2(0.5 * static_cast<double>(finest_level_)) /
                       static_cast<double>(count_);
  std::vector<double> scaled(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) scaled[i] = counts_[i] * scale;
  Result<wavelet::DwtCoefficients> pyramid =
      wavelet::ForwardDwt(filter_, scaled, finest_level_ - j0_);
  WDE_CHECK_OK(pyramid.status());
  pyramid_ = std::move(pyramid).value();
  pyramid_at_count_ = count_;
}

double BinnedWaveletFit::BetaHat(int j, int k) const {
  WDE_CHECK(j >= j0_ && j < finest_level_, "detail level out of range");
  EnsurePyramid();
  // pyramid_.details[0] is the finest level (finest_level_ - 1).
  const size_t index = static_cast<size_t>(finest_level_ - 1 - j);
  const std::vector<double>& level = pyramid_.details[index];
  WDE_CHECK(k >= 0 && static_cast<size_t>(k) < level.size(),
            "translation out of range");
  return level[static_cast<size_t>(k)];
}

double BinnedWaveletFit::AlphaHat(int k) const {
  EnsurePyramid();
  WDE_CHECK(k >= 0 && static_cast<size_t>(k) < pyramid_.approximation.size(),
            "translation out of range");
  return pyramid_.approximation[static_cast<size_t>(k)];
}

Result<std::vector<double>> BinnedWaveletFit::EstimateOnGrid(
    const ThresholdSchedule& schedule, ThresholdKind kind) const {
  EnsurePyramid();
  wavelet::DwtCoefficients thresholded = pyramid_;
  for (size_t index = 0; index < thresholded.details.size(); ++index) {
    const int j = finest_level_ - 1 - static_cast<int>(index);
    const double lambda = schedule.LevelLambda(j);
    for (double& beta : thresholded.details[index]) {
      beta = ApplyThreshold(kind, beta, lambda);
    }
  }
  Result<std::vector<double>> reconstructed =
      wavelet::InverseDwt(filter_, thresholded);
  if (!reconstructed.ok()) return reconstructed.status();
  const double scale =
      std::exp2(0.5 * static_cast<double>(finest_level_)) / width_;
  for (double& v : *reconstructed) v *= scale;
  return reconstructed;
}

std::vector<double> BinnedWaveletFit::GridCenters() const {
  const size_t cells = 1ULL << finest_level_;
  std::vector<double> centers(cells);
  for (size_t i = 0; i < cells; ++i) {
    centers[i] =
        lo_ + width_ * (static_cast<double>(i) + 0.5) / static_cast<double>(cells);
  }
  return centers;
}

}  // namespace core
}  // namespace wde
