#ifndef WDE_CORE_ADAPTIVE_HPP_
#define WDE_CORE_ADAPTIVE_HPP_

#include <span>

#include "core/cross_validation.hpp"
#include "core/estimator.hpp"

namespace wde {
namespace core {

/// One-call facade for the paper's data-driven estimators f̂ᴴᵀᶜᵛ / f̂ˢᵀᶜᵛ:
/// fit empirical coefficients with the §5.1 defaults (j0 = ⌈ln n/(1+N)⌉,
/// j* = log2 n), cross-validate per-level thresholds, reconstruct.
struct AdaptiveOptions {
  ThresholdKind kind = ThresholdKind::kSoft;
  FitOptions fit;
};

struct AdaptiveDensityEstimate {
  WaveletEstimate estimate;
  CrossValidationResult cv;
};

Result<AdaptiveDensityEstimate> FitAdaptive(const wavelet::WaveletBasis& basis,
                                            std::span<const double> data,
                                            const AdaptiveOptions& options = {});

}  // namespace core
}  // namespace wde

#endif  // WDE_CORE_ADAPTIVE_HPP_
