#ifndef WDE_KERNEL_BANDWIDTH_HPP_
#define WDE_KERNEL_BANDWIDTH_HPP_

#include <span>

#include "kernel/kernels.hpp"

namespace wde {
namespace kernel {

/// MATLAB's rule of thumb, as spelled out in the paper (§5.4):
///   h = (q3 - q1) / (2 · 0.6745) · (4 / (3n))^{1/5},
/// with quartiles under MATLAB's quantile convention. Falls back to the
/// sample standard deviation when the IQR degenerates.
double RuleOfThumbBandwidth(std::span<const double> data);

/// RuleOfThumbBandwidth over an already ascending-sorted sample. The IQR is
/// read from order statistics in O(1) instead of two copy+sort passes, and
/// the StdDev fallback sums in sorted order — so two calls on the same sorted
/// span are bitwise-identical regardless of the insertion order that produced
/// it. Callers that maintain the sorted buffer incrementally (KDE refit) use
/// this on both the fit and restore paths to keep the fitted bandwidth
/// bit-exact across save/load.
double RuleOfThumbBandwidthSorted(std::span<const double> sorted);

/// Silverman's rule 0.9 · min(sd, IQR/1.34) · n^{-1/5} (provided for
/// completeness; not used in the reproduction benches).
double SilvermanBandwidth(std::span<const double> data);

/// Least-squares cross-validation bandwidth: minimizes
///   CV(h) = ∫ f̂² − (2/n) Σ_i f̂_{-i}(X_i)
///         = Σ_{i,j} (K*K)((X_i−X_j)/h)/(n²h) − 2 Σ_{i≠j} K((X_i−X_j)/h)/(n(n−1)h)
/// exactly (via the kernel self-convolution), scanning a log-spaced grid of
/// `grid_points` bandwidths in [lo_factor, hi_factor] × rule-of-thumb and
/// refining with golden-section search. O(n · neighbors) per candidate via
/// sorted-window evaluation.
double LeastSquaresCvBandwidth(const Kernel& kernel, std::span<const double> data,
                               double lo_factor = 0.1, double hi_factor = 2.0,
                               int grid_points = 24);

/// The LSCV objective itself (exposed for tests and diagnostics).
double LeastSquaresCvCriterion(const Kernel& kernel, std::span<const double> sorted_data,
                               double bandwidth);

}  // namespace kernel
}  // namespace wde

#endif  // WDE_KERNEL_BANDWIDTH_HPP_
