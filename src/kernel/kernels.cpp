#include "kernel/kernels.hpp"

#include <cmath>
#include <vector>

#include "numerics/integration.hpp"
#include "numerics/simd.hpp"
#include "numerics/special_functions.hpp"
#include "util/check.hpp"

namespace wde {
namespace kernel {
namespace {

double RawKernel(KernelType type, double u) {
  const double au = std::fabs(u);
  switch (type) {
    case KernelType::kEpanechnikov:
      return au <= 1.0 ? 0.75 * (1.0 - u * u) : 0.0;
    case KernelType::kGaussian:
      return numerics::NormalPdf(u);
    case KernelType::kBiweight:
      return au <= 1.0 ? 0.9375 * (1.0 - u * u) * (1.0 - u * u) : 0.0;
    case KernelType::kTriangular:
      return au <= 1.0 ? 1.0 - au : 0.0;
  }
  return 0.0;
}

double RadiusFor(KernelType type) {
  return type == KernelType::kGaussian ? 8.0 : 1.0;
}

}  // namespace

Kernel::Kernel(KernelType type) : type_(type), radius_(RadiusFor(type)) {
  // CDF table on [-R, R].
  const size_t kCdfPoints = 4097;
  const double cdf_dx = 2.0 * radius_ / static_cast<double>(kCdfPoints - 1);
  std::vector<double> density(kCdfPoints);
  for (size_t i = 0; i < kCdfPoints; ++i) {
    density[i] = RawKernel(type_, -radius_ + cdf_dx * static_cast<double>(i));
  }
  std::vector<double> cdf = numerics::CumulativeTrapezoid(density, cdf_dx);
  // Normalize the tail to exactly 1 so range estimates telescope cleanly.
  const double total = cdf.back();
  WDE_CHECK_GT(total, 0.99);
  for (double& c : cdf) c /= total;
  cdf_table_ = std::make_shared<const numerics::UniformGridInterpolator>(
      -radius_, cdf_dx, std::move(cdf));

  // Self-convolution table on [-2R, 2R]; by symmetry compute t >= 0 and
  // mirror.
  const size_t kConvPoints = 2049;
  const double conv_dx = 2.0 * radius_ / static_cast<double>(kConvPoints - 1);
  std::vector<double> half(kConvPoints);
  for (size_t i = 0; i < kConvPoints; ++i) {
    const double t = conv_dx * static_cast<double>(i);
    const double lo = std::max(-radius_, t - radius_);
    const double hi = std::min(radius_, t + radius_);
    half[i] = hi > lo ? numerics::IntegrateFunction(
                            [this, t](double u) {
                              return RawKernel(type_, u) * RawKernel(type_, t - u);
                            },
                            lo, hi, 256)
                      : 0.0;
  }
  std::vector<double> conv(2 * kConvPoints - 1);
  for (size_t i = 0; i < kConvPoints; ++i) {
    conv[kConvPoints - 1 + i] = half[i];
    conv[kConvPoints - 1 - i] = half[i];
  }
  conv_table_ = std::make_shared<const numerics::UniformGridInterpolator>(
      -2.0 * radius_, conv_dx, std::move(conv));
}

double Kernel::Evaluate(double u) const { return RawKernel(type_, u); }

void Kernel::EvaluateMany(std::span<const double> us, std::span<double> out) const {
  WDE_CHECK_EQ(us.size(), out.size(), "EvaluateMany spans must match");
  const size_t n = us.size();
  // One loop per kernel type so the dispatch is hoisted; each loop body is
  // the corresponding RawKernel branch verbatim, hence bit-identical.
  switch (type_) {
    case KernelType::kEpanechnikov:
      WDE_SIMD_LOOP
      for (size_t i = 0; i < n; ++i) {
        const double u = us[i];
        out[i] = std::fabs(u) <= 1.0 ? 0.75 * (1.0 - u * u) : 0.0;
      }
      break;
    case KernelType::kGaussian:
      // exp() keeps this one scalar; the hoisted loop still drops the
      // per-element type dispatch.
      for (size_t i = 0; i < n; ++i) out[i] = numerics::NormalPdf(us[i]);
      break;
    case KernelType::kBiweight:
      WDE_SIMD_LOOP
      for (size_t i = 0; i < n; ++i) {
        const double u = us[i];
        out[i] =
            std::fabs(u) <= 1.0 ? 0.9375 * (1.0 - u * u) * (1.0 - u * u) : 0.0;
      }
      break;
    case KernelType::kTriangular:
      WDE_SIMD_LOOP
      for (size_t i = 0; i < n; ++i) {
        const double au = std::fabs(us[i]);
        out[i] = au <= 1.0 ? 1.0 - au : 0.0;
      }
      break;
  }
}

double Kernel::Cdf(double u) const {
  if (u <= -radius_) return 0.0;
  if (u >= radius_) return 1.0;
  return cdf_table_->Evaluate(u);
}

void Kernel::CdfMany(std::span<const double> us, std::span<double> out) const {
  WDE_CHECK_EQ(us.size(), out.size(), "CdfMany spans must match");
  const double radius = radius_;
  const double x0 = cdf_table_->x0();
  const double dx = cdf_table_->dx();
  const double* values = cdf_table_->values().data();
  const size_t n = cdf_table_->values().size();
  const double t_max = static_cast<double>(n - 1);
  const size_t count = us.size();
  WDE_SIMD_LOOP
  for (size_t i = 0; i < count; ++i) {
    const double u = us[i];
    // Interior lanes reproduce UniformGridInterpolator::EvaluateOn bit for
    // bit; saturated lanes compute a clamped (valid, discarded) lookup and
    // are overridden by the same comparisons Cdf() branches on.
    const double t = (u - x0) / dx;
    const bool inside = t >= 0.0 && t <= t_max;
    const double tc = inside ? t : 0.0;
    size_t idx = static_cast<size_t>(tc);
    idx = idx < n - 2 ? idx : n - 2;
    const double frac = tc - static_cast<double>(idx);
    const double v = values[idx] * (1.0 - frac) + values[idx + 1] * frac;
    const double interp = !inside ? 0.0 : (t >= t_max ? values[n - 1] : v);
    out[i] = u <= -radius ? 0.0 : (u >= radius ? 1.0 : interp);
  }
}

double Kernel::SelfConvolution(double t) const { return conv_table_->Evaluate(t); }

std::string Kernel::name() const {
  switch (type_) {
    case KernelType::kEpanechnikov:
      return "epanechnikov";
    case KernelType::kGaussian:
      return "gaussian";
    case KernelType::kBiweight:
      return "biweight";
    case KernelType::kTriangular:
      return "triangular";
  }
  return "unknown";
}

}  // namespace kernel
}  // namespace wde
