/// \file kernel/kde_tree.hpp
/// Tree-pruned evaluation over the KDE's sorted sample buffer.
///
/// A 1-D kd-tree (an interval tree over the sorted array: every node owns a
/// contiguous index range plus cached weight/bounding-box aggregates) that
/// accelerates kernel-density and kernel-CDF sums two ways:
///
///   * **Exact pruning** — subtrees entirely outside the kernel window (for
///     density) or entirely inside a CDF saturation zone (for the CDF) are
///     accepted or skipped wholesale using the *same comparison arithmetic*
///     as the scalar per-sample branches, so tolerance-0 traversal is
///     bit-identical to the linear windowed pass.
///   * **Bounded collapse** — with a positive tolerance, a subtree whose
///     min/max kernel-contribution bounds are close enough is replaced by
///     `count · midpoint(bounds)` without expanding it.
///
/// Certified tolerance contract (requires the kernel to be symmetric and
/// non-increasing in |u|, true of every shipped kernel; kernel CDFs are
/// non-decreasing):
///
///   * Density: a node fully inside the window with distance range
///     [dmin, dmax] to the query has per-sample kernel values in
///     [K(dmax/h), K(dmin/h)]. Collapsing to the midpoint errs at most
///     (K(dmin/h) − K(dmax/h))/2 per sample. The node is collapsed only when
///     K(dmin/h) − K(dmax/h) ≤ 2·tol·h, so after the 1/(n·h) normalization
///     the total error over all collapsed nodes is
///     Σ mᵢ·gapᵢ/(2nh) ≤ n·(2·tol·h)/(2nh) = tol.
///   * CDF: per-sample CDF values lie in [Cdf((x−xmax)/h), Cdf((x−xmin)/h)];
///     collapse requires the gap ≤ 2·tol, so after the 1/n normalization the
///     total error is ≤ tol.
///
/// Tolerance 0 never collapses (the gap test is strict), leaving only the
/// exact prunes — that mode is asserted bitwise-equal to the linear pass by
/// kde_tree_test and the perf_kernels --check gate.
///
/// The tree stores indices and aggregate values only — no pointers into the
/// sample buffer — so it remains valid for any buffer with equal contents
/// (copies of the owning estimator share it safely) and is rebuilt, not
/// persisted, on snapshot restore.
#ifndef WDE_KERNEL_KDE_TREE_HPP_
#define WDE_KERNEL_KDE_TREE_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "kernel/kernels.hpp"
#include "memory/arena.hpp"

namespace wde {
namespace kernel {

class KdeEvalTree {
 public:
  /// Leaves hold at most this many samples; below it, pruning bookkeeping
  /// costs more than the scalar terms it could save. Tuned against the
  /// perf_kernels tree rows: 128 roughly halves the node count (and the
  /// per-query pointer chasing) versus the original 32 while the leaf scan
  /// stays inside one or two cache lines of samples.
  static constexpr uint32_t kLeafSize = 128;

  /// Buffers at or below this size skip the tree entirely: a linear windowed
  /// pass over ≤ kLinearCutover samples beats even one level of traversal,
  /// and the exact pass trivially satisfies any tolerance.
  static constexpr size_t kLinearCutover = 512;

  /// Builds over a sorted, non-empty buffer. Only the values are read at
  /// build time; evaluation takes the buffer again by argument (it must have
  /// the same contents, not necessarily the same storage).
  explicit KdeEvalTree(std::span<const double> sorted);

  /// Σ_{xᵢ ∈ [x−Rh, x+Rh]} K((x−xᵢ)/h) with bounded-node collapses; the
  /// caller divides by n·h. tolerance is the certified absolute error bound
  /// on the *normalized* density; 0 ⇒ bit-identical to the linear windowed
  /// sum of KernelDensityEstimator::Evaluate.
  double DensitySum(std::span<const double> sorted, const Kernel& kernel,
                    double bandwidth, double x, double tolerance) const;

  /// Σᵢ Cdf((x−xᵢ)/h) with saturation prunes and bounded-node collapses; the
  /// caller divides by n. tolerance is the certified absolute error bound on
  /// the *normalized* CDF; 0 ⇒ bit-identical to the windowed sum of
  /// KernelDensityEstimator::CdfAt.
  double CdfSum(std::span<const double> sorted, const Kernel& kernel,
                double bandwidth, double x, double tolerance) const;

  size_t sample_size() const { return nodes_.empty() ? 0 : nodes_[0].count(); }
  size_t node_count() const { return nodes_.size(); }
  /// The packed node array's backing storage (one U8 arena column).
  size_t storage_bytes() const { return storage_.payload_bytes(); }

 private:
  struct Node {
    uint32_t begin;
    uint32_t end;
    /// Index of the left child; the right child is `left + 1`. 0 marks a
    /// leaf (node 0 is the root, never anyone's child).
    uint32_t left;
    /// Bounding-box aggregates: sorted[begin] and sorted[end - 1], cached so
    /// pruning never touches the sample buffer.
    double xmin;
    double xmax;

    uint32_t count() const { return end - begin; }
    bool leaf() const { return left == 0; }
  };

  static void BuildAt(std::vector<Node>& nodes, std::span<const double> sorted,
                      uint32_t idx, uint32_t begin, uint32_t end);

  struct DensityState;
  struct CdfState;
  void DensityNode(const Node& node, std::span<const double> sorted,
                   DensityState& st) const;
  void CdfNode(const Node& node, std::span<const double> sorted,
               CdfState& st) const;

  /// The nodes live packed in one U8 arena column (64-byte-aligned, never
  /// mutated after the build), so copies of the tree share the storage and
  /// the cached view below stays valid for the tree's whole lifetime.
  memory::Arena storage_;
  std::span<const Node> nodes_;
};

}  // namespace kernel
}  // namespace wde

#endif  // WDE_KERNEL_KDE_TREE_HPP_
