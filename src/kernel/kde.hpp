/// \file kernel/kde.hpp
/// Entry header of the `kernel` module: the paper's comparison estimator
/// (§5.4, Figures 5–8) — classical KDE with the bandwidth selectors of
/// bandwidth.hpp ("kernel 1" rule-of-thumb, "kernel 2" LSCV). Invariants:
/// estimates are nonnegative and integrate to 1 over ℝ (unlike the signed
/// wavelet estimate); no boundary correction is applied, faithfully to the
/// paper; Create() rejects empty data and non-positive bandwidths.
#ifndef WDE_KERNEL_KDE_HPP_
#define WDE_KERNEL_KDE_HPP_

#include <memory>
#include <span>
#include <vector>

#include "kernel/kde_tree.hpp"
#include "kernel/kernels.hpp"
#include "memory/arena.hpp"
#include "util/result.hpp"

namespace wde {
namespace kernel {

/// Classical kernel density estimator f̂(x) = (nh)^{-1} Σ K((x - X_i)/h),
/// evaluated over a sorted copy of the data so that compactly supported
/// kernels cost O(log n + n·h) per query. This is the paper's baseline
/// estimator (§5.4); no boundary correction is applied, as in the paper.
class KernelDensityEstimator {
 public:
  static Result<KernelDensityEstimator> Create(Kernel kernel, double bandwidth,
                                               std::span<const double> data);

  /// Snapshot fast path: adopts an already-sorted sample buffer without
  /// re-sorting. When `sorted` is 64-byte-aligned and `keepalive` anchors its
  /// backing storage (an mmapped snapshot image), the estimator borrows the
  /// bytes zero-copy; otherwise it copies them once. Ascending order is
  /// verified in O(n) — out-of-order input yields a Status, never a silently
  /// wrong estimator.
  static Result<KernelDensityEstimator> FromSorted(
      Kernel kernel, double bandwidth, std::span<const double> sorted,
      std::shared_ptr<const void> keepalive);

  double Evaluate(double x) const;

  /// Tree-pruned evaluation (routed through the kd-tree, built lazily on
  /// first use; buffers at or below KdeEvalTree::kLinearCutover run the
  /// exact linear pass instead, which satisfies any tolerance). `tolerance`
  /// is a certified absolute error bound on the returned density (see
  /// kde_tree.hpp for the derivation); tolerance 0 is bit-identical to
  /// Evaluate(x) and only prunes exactly.
  double Evaluate(double x, double tolerance) const;

  /// out[i] = f̂(xs[i]). With tolerance 0 (the default), each query runs the
  /// linear windowed pass with the kernel terms gathered into contiguous
  /// scratch and evaluated by the SIMD batch kernel — bit-identical to
  /// Evaluate(xs[i]). With a positive tolerance, queries run tree-pruned
  /// under the certified bound.
  void EvaluateMany(std::span<const double> xs, std::span<double> out,
                    double tolerance = 0.0) const;

  /// Values on an inclusive uniform grid [lo, hi].
  std::vector<double> EvaluateOnGrid(double lo, double hi, size_t points) const;

  /// Estimated P(a <= X <= b) from the kernel CDF (used as a selectivity
  /// baseline).
  double IntegrateRange(double a, double b) const;

  /// The kernel CDF F̂(x) = n^{-1} Σ K_cdf((x - X_i)/h), evaluated over the
  /// compact-support window only: samples whose kernel argument saturates
  /// the CDF branch (u >= R → exactly 1, u <= -R → exactly 0) are counted or
  /// skipped without a table lookup, found with the same predicate
  /// arithmetic as the branches themselves — so the windowed sum is
  /// bit-identical to IntegrateRange(-inf, x) at O(log n + window) instead
  /// of O(n). The one-sided/CDF query path of the selectivity layer.
  double CdfAt(double x) const;

  /// Tree-pruned CDF (always routed through the kd-tree). tolerance 0 is
  /// bit-identical to CdfAt(x); positive tolerances carry the certified
  /// absolute bound of kde_tree.hpp.
  double CdfAt(double x, double tolerance) const;

  /// out[i] = CdfAt(xs[i]) — windowed + SIMD-gathered at tolerance 0
  /// (bit-identical), tree-pruned otherwise.
  void CdfAtMany(std::span<const double> xs, std::span<double> out,
                 double tolerance = 0.0) const;

  double bandwidth() const { return bandwidth_; }
  const Kernel& kernel() const { return kernel_; }
  size_t sample_size() const { return sorted_.size(); }
  std::span<const double> samples() const { return sorted_; }

 private:
  KernelDensityEstimator(Kernel kernel, double bandwidth, memory::Arena samples);

  /// Lazily built on first pruned call and shared by copies (the tree stores
  /// indices and aggregates only, so it is valid for any buffer with equal
  /// contents). Never persisted: snapshot restore rebuilds on demand. Lazy
  /// build follows the repo's warm-up contract — the first query through an
  /// estimator refreshes lazy state before concurrent readers fan out.
  const KdeEvalTree& Tree() const;

  Kernel kernel_;
  double bandwidth_;
  /// One F64 column holding the ascending samples. Never mutated after
  /// construction, so the cached view below stays valid across copies (which
  /// share the storage) and moves.
  memory::Arena samples_;
  std::span<const double> sorted_;
  mutable std::shared_ptr<const KdeEvalTree> tree_;
};

}  // namespace kernel
}  // namespace wde

#endif  // WDE_KERNEL_KDE_HPP_
