#ifndef WDE_KERNEL_KERNELS_HPP_
#define WDE_KERNEL_KERNELS_HPP_

#include <memory>
#include <span>
#include <string>

#include "numerics/interpolation.hpp"

namespace wde {
namespace kernel {

enum class KernelType { kEpanechnikov, kGaussian, kBiweight, kTriangular };

/// A symmetric probability kernel K with unit mass. Provides the kernel
/// itself, its CDF (for selectivity/range queries), and its self-convolution
/// K*K (for the exact ∫f̂² term of least-squares cross-validation). CDF and
/// self-convolution are precomputed numerically on fine grids, which keeps
/// the class kernel-agnostic; closed forms exist for the shipped kernels and
/// are used as test oracles.
class Kernel {
 public:
  explicit Kernel(KernelType type);

  double Evaluate(double u) const;

  /// out[i] = Evaluate(us[i]) bit-identically, with the kernel-type dispatch
  /// hoisted out of the loop and the per-type loop SIMD-annotated (see
  /// numerics/simd.hpp for the contract: elementwise, no re-association).
  void EvaluateMany(std::span<const double> us, std::span<double> out) const;

  /// Radius R such that K vanishes outside [-R, R] (effective radius for the
  /// Gaussian).
  double support_radius() const { return radius_; }

  /// ∫_{-∞}^{u} K.
  double Cdf(double u) const;

  /// out[i] = Cdf(us[i]) bit-identically. The scalar saturation branches are
  /// rewritten as selects over clamped table indices so the loop is branch-
  /// free and SIMD-annotated; interior lookups use the exact interpolation
  /// arithmetic of UniformGridInterpolator::EvaluateOn.
  void CdfMany(std::span<const double> us, std::span<double> out) const;

  /// (K*K)(t) = ∫ K(u) K(t-u) du, supported on [-2R, 2R].
  double SelfConvolution(double t) const;

  /// Roughness ∫ K² = (K*K)(0).
  double Roughness() const { return SelfConvolution(0.0); }

  KernelType type() const { return type_; }
  std::string name() const;

 private:
  KernelType type_;
  double radius_;
  std::shared_ptr<const numerics::UniformGridInterpolator> cdf_table_;
  std::shared_ptr<const numerics::UniformGridInterpolator> conv_table_;
};

}  // namespace kernel
}  // namespace wde

#endif  // WDE_KERNEL_KERNELS_HPP_
