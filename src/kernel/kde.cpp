#include "kernel/kde.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace kernel {

KernelDensityEstimator::KernelDensityEstimator(Kernel kernel, double bandwidth,
                                               std::vector<double> sorted)
    : kernel_(std::move(kernel)), bandwidth_(bandwidth), sorted_(std::move(sorted)) {}

Result<KernelDensityEstimator> KernelDensityEstimator::Create(
    Kernel kernel, double bandwidth, std::span<const double> data) {
  if (data.empty()) return Status::InvalidArgument("KDE requires data");
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("bandwidth must be positive and finite");
  }
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  return KernelDensityEstimator(std::move(kernel), bandwidth, std::move(sorted));
}

double KernelDensityEstimator::Evaluate(double x) const {
  const double radius = kernel_.support_radius() * bandwidth_;
  const auto lo =
      std::lower_bound(sorted_.begin(), sorted_.end(), x - radius);
  const auto hi = std::upper_bound(lo, sorted_.end(), x + radius);
  double acc = 0.0;
  for (auto it = lo; it != hi; ++it) {
    acc += kernel_.Evaluate((x - *it) / bandwidth_);
  }
  return acc / (static_cast<double>(sorted_.size()) * bandwidth_);
}

std::vector<double> KernelDensityEstimator::EvaluateOnGrid(double lo, double hi,
                                                           size_t points) const {
  WDE_CHECK_GE(points, 2u);
  WDE_CHECK_LT(lo, hi);
  std::vector<double> out(points);
  const double dx = (hi - lo) / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) {
    out[i] = Evaluate(lo + dx * static_cast<double>(i));
  }
  return out;
}

double KernelDensityEstimator::IntegrateRange(double a, double b) const {
  if (b < a) std::swap(a, b);
  double acc = 0.0;
  for (double x : sorted_) {
    acc += kernel_.Cdf((b - x) / bandwidth_) - kernel_.Cdf((a - x) / bandwidth_);
  }
  return acc / static_cast<double>(sorted_.size());
}

double KernelDensityEstimator::CdfAt(double x) const {
  // sorted_ ascends, so u = (x - X_i)/h descends along the array: a prefix
  // of samples saturates Kernel::Cdf at exactly 1.0 (u >= R), a suffix at
  // exactly 0.0 (u <= -R), and only the window between them needs the table.
  // Both split points use the very comparison the Cdf branches evaluate, and
  // the saturated prefix sums to its exact integer count, so the result is
  // bit-identical to the full per-sample sum of IntegrateRange(-inf, x).
  const double radius = kernel_.support_radius();
  const auto ones_end = std::partition_point(
      sorted_.begin(), sorted_.end(),
      [&](double xi) { return (x - xi) / bandwidth_ >= radius; });
  double acc = static_cast<double>(ones_end - sorted_.begin());
  for (auto it = ones_end; it != sorted_.end(); ++it) {
    const double u = (x - *it) / bandwidth_;
    if (u <= -radius) break;  // every remaining term is exactly 0.0
    acc += kernel_.Cdf(u);
  }
  return acc / static_cast<double>(sorted_.size());
}

}  // namespace kernel
}  // namespace wde
