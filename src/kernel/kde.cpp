#include "kernel/kde.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/simd.hpp"
#include "util/check.hpp"

namespace wde {
namespace kernel {
namespace {

// Per-thread scratch for the gathered stride-1 operand/result buffers of the
// batch paths, reused across calls so steady-state evaluation never
// allocates. Thread-local keeps the concurrent read-side (sharded fan-out,
// serving views) race-free without locks.
std::vector<double>& ScratchArgs() {
  thread_local std::vector<double> buf;
  return buf;
}
std::vector<double>& ScratchVals() {
  thread_local std::vector<double> buf;
  return buf;
}

}  // namespace

KernelDensityEstimator::KernelDensityEstimator(Kernel kernel, double bandwidth,
                                               memory::Arena samples)
    : kernel_(std::move(kernel)),
      bandwidth_(bandwidth),
      samples_(std::move(samples)),
      sorted_(samples_.F64(0)) {}

Result<KernelDensityEstimator> KernelDensityEstimator::Create(
    Kernel kernel, double bandwidth, std::span<const double> data) {
  if (data.empty()) return Status::InvalidArgument("KDE requires data");
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("bandwidth must be positive and finite");
  }
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, data.size()}};
  memory::Arena samples = memory::Arena::Create(specs);
  std::span<double> dst = samples.MutableF64(0);
  std::copy(data.begin(), data.end(), dst.begin());
  std::sort(dst.begin(), dst.end());
  return KernelDensityEstimator(std::move(kernel), bandwidth, std::move(samples));
}

Result<KernelDensityEstimator> KernelDensityEstimator::FromSorted(
    Kernel kernel, double bandwidth, std::span<const double> sorted,
    std::shared_ptr<const void> keepalive) {
  if (sorted.empty()) return Status::InvalidArgument("KDE requires data");
  if (!(bandwidth > 0.0) || !std::isfinite(bandwidth)) {
    return Status::InvalidArgument("bandwidth must be positive and finite");
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i - 1] > sorted[i]) {
      return Status::InvalidArgument("FromSorted: samples are not ascending");
    }
  }
  const std::span<const uint8_t> bytes(
      reinterpret_cast<const uint8_t*>(sorted.data()), sorted.size_bytes());
  const memory::ColumnSpec specs[] = {
      {memory::ColumnKind::kF64, sorted.size()}};
  WDE_ASSIGN_OR_RETURN(memory::Arena samples,
                       memory::Arena::FromImage(specs, bytes, std::move(keepalive)));
  return KernelDensityEstimator(std::move(kernel), bandwidth, std::move(samples));
}

double KernelDensityEstimator::Evaluate(double x) const {
  const double radius = kernel_.support_radius() * bandwidth_;
  const auto lo =
      std::lower_bound(sorted_.begin(), sorted_.end(), x - radius);
  const auto hi = std::upper_bound(lo, sorted_.end(), x + radius);
  double acc = 0.0;
  for (auto it = lo; it != hi; ++it) {
    acc += kernel_.Evaluate((x - *it) / bandwidth_);
  }
  return acc / (static_cast<double>(sorted_.size()) * bandwidth_);
}

const KdeEvalTree& KernelDensityEstimator::Tree() const {
  if (!tree_) tree_ = std::make_shared<const KdeEvalTree>(std::span(sorted_));
  return *tree_;
}

double KernelDensityEstimator::Evaluate(double x, double tolerance) const {
  // Small buffers: the exact linear pass beats even one level of traversal
  // and satisfies any tolerance trivially (it is the tolerance-0 answer).
  if (sorted_.size() <= KdeEvalTree::kLinearCutover) return Evaluate(x);
  return Tree().DensitySum(sorted_, kernel_, bandwidth_, x, tolerance) /
         (static_cast<double>(sorted_.size()) * bandwidth_);
}

void KernelDensityEstimator::EvaluateMany(std::span<const double> xs,
                                          std::span<double> out,
                                          double tolerance) const {
  WDE_CHECK_EQ(xs.size(), out.size(), "EvaluateMany spans must match");
  if (tolerance > 0.0) {
    for (size_t i = 0; i < xs.size(); ++i) out[i] = Evaluate(xs[i], tolerance);
    return;
  }
  const double radius = kernel_.support_radius() * bandwidth_;
  const double norm = static_cast<double>(sorted_.size()) * bandwidth_;
  std::vector<double>& us = ScratchArgs();
  std::vector<double>& ks = ScratchVals();
  for (size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    // Same window, same per-term arithmetic, same left-to-right sum as
    // Evaluate(x) — only the kernel applications run through the gathered
    // SIMD batch, which is elementwise bit-identical.
    const auto lo = std::lower_bound(sorted_.begin(), sorted_.end(), x - radius);
    const auto hi = std::upper_bound(lo, sorted_.end(), x + radius);
    const size_t window = static_cast<size_t>(hi - lo);
    us.resize(window);
    ks.resize(window);
    const double* base = sorted_.data() + (lo - sorted_.begin());
    const double bandwidth = bandwidth_;
    WDE_SIMD_LOOP
    for (size_t m = 0; m < window; ++m) us[m] = (x - base[m]) / bandwidth;
    kernel_.EvaluateMany(us, ks);
    double acc = 0.0;
    for (size_t m = 0; m < window; ++m) acc += ks[m];
    out[i] = acc / norm;
  }
}

std::vector<double> KernelDensityEstimator::EvaluateOnGrid(double lo, double hi,
                                                           size_t points) const {
  WDE_CHECK_GE(points, 2u);
  WDE_CHECK_LT(lo, hi);
  std::vector<double> out(points);
  const double dx = (hi - lo) / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) {
    out[i] = Evaluate(lo + dx * static_cast<double>(i));
  }
  return out;
}

double KernelDensityEstimator::IntegrateRange(double a, double b) const {
  if (b < a) std::swap(a, b);
  double acc = 0.0;
  for (double x : sorted_) {
    acc += kernel_.Cdf((b - x) / bandwidth_) - kernel_.Cdf((a - x) / bandwidth_);
  }
  return acc / static_cast<double>(sorted_.size());
}

double KernelDensityEstimator::CdfAt(double x) const {
  // sorted_ ascends, so u = (x - X_i)/h descends along the array: a prefix
  // of samples saturates Kernel::Cdf at exactly 1.0 (u >= R), a suffix at
  // exactly 0.0 (u <= -R), and only the window between them needs the table.
  // Both split points use the very comparison the Cdf branches evaluate, and
  // the saturated prefix sums to its exact integer count, so the result is
  // bit-identical to the full per-sample sum of IntegrateRange(-inf, x).
  // The window terms are gathered into contiguous scratch and evaluated by
  // the SIMD batch CDF (elementwise bit-identical to Kernel::Cdf), then
  // summed left to right exactly as the scalar loop did.
  const double radius = kernel_.support_radius();
  const auto ones_end = std::partition_point(
      sorted_.begin(), sorted_.end(),
      [&](double xi) { return (x - xi) / bandwidth_ >= radius; });
  const auto zeros_begin = std::partition_point(
      ones_end, sorted_.end(),
      [&](double xi) { return (x - xi) / bandwidth_ > -radius; });
  double acc = static_cast<double>(ones_end - sorted_.begin());
  const size_t window = static_cast<size_t>(zeros_begin - ones_end);
  if (window != 0) {
    std::vector<double>& us = ScratchArgs();
    std::vector<double>& ks = ScratchVals();
    us.resize(window);
    ks.resize(window);
    const double* base = sorted_.data() + (ones_end - sorted_.begin());
    const double bandwidth = bandwidth_;
    WDE_SIMD_LOOP
    for (size_t m = 0; m < window; ++m) us[m] = (x - base[m]) / bandwidth;
    kernel_.CdfMany(us, ks);
    for (size_t m = 0; m < window; ++m) acc += ks[m];
  }
  return acc / static_cast<double>(sorted_.size());
}

double KernelDensityEstimator::CdfAt(double x, double tolerance) const {
  if (sorted_.size() <= KdeEvalTree::kLinearCutover) return CdfAt(x);
  return Tree().CdfSum(sorted_, kernel_, bandwidth_, x, tolerance) /
         static_cast<double>(sorted_.size());
}

void KernelDensityEstimator::CdfAtMany(std::span<const double> xs,
                                       std::span<double> out,
                                       double tolerance) const {
  WDE_CHECK_EQ(xs.size(), out.size(), "CdfAtMany spans must match");
  if (tolerance > 0.0) {
    for (size_t i = 0; i < xs.size(); ++i) out[i] = CdfAt(xs[i], tolerance);
  } else {
    for (size_t i = 0; i < xs.size(); ++i) out[i] = CdfAt(xs[i]);
  }
}

}  // namespace kernel
}  // namespace wde
