#include "kernel/bandwidth.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numerics/optimize.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace wde {
namespace kernel {

double RuleOfThumbBandwidth(std::span<const double> data) {
  WDE_CHECK_GE(data.size(), 2u);
  const double n = static_cast<double>(data.size());
  double sigma =
      stats::Iqr(data, stats::QuantileMethod::kMatlab) / (2.0 * 0.6745);
  if (sigma <= 0.0) sigma = stats::StdDev(data);
  WDE_CHECK_GT(sigma, 0.0, "degenerate sample: zero spread");
  return sigma * std::pow(4.0 / (3.0 * n), 0.2);
}

double RuleOfThumbBandwidthSorted(std::span<const double> sorted) {
  WDE_CHECK_GE(sorted.size(), 2u);
  const double n = static_cast<double>(sorted.size());
  double sigma =
      stats::IqrSorted(sorted, stats::QuantileMethod::kMatlab) / (2.0 * 0.6745);
  if (sigma <= 0.0) sigma = stats::StdDev(sorted);
  WDE_CHECK_GT(sigma, 0.0, "degenerate sample: zero spread");
  return sigma * std::pow(4.0 / (3.0 * n), 0.2);
}

double SilvermanBandwidth(std::span<const double> data) {
  WDE_CHECK_GE(data.size(), 2u);
  const double n = static_cast<double>(data.size());
  const double sd = stats::StdDev(data);
  const double iqr = stats::Iqr(data, stats::QuantileMethod::kType7);
  double sigma = sd;
  if (iqr > 0.0) sigma = std::min(sd, iqr / 1.34);
  WDE_CHECK_GT(sigma, 0.0, "degenerate sample: zero spread");
  return 0.9 * sigma * std::pow(n, -0.2);
}

double LeastSquaresCvCriterion(const Kernel& kernel,
                               std::span<const double> sorted_data,
                               double bandwidth) {
  const size_t n = sorted_data.size();
  WDE_CHECK_GE(n, 2u);
  WDE_CHECK_GT(bandwidth, 0.0);
  const double radius = kernel.support_radius() * bandwidth;
  // Pair sums over |X_i − X_j| ≤ 2R·h (the self-convolution support) using
  // the sorted order. Diagonal terms handled in closed form.
  double conv_sum = 0.0;   // Σ_{i<j} (K*K)(Δ/h)
  double kernel_sum = 0.0; // Σ_{i<j} K(Δ/h)
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double delta = sorted_data[j] - sorted_data[i];
      if (delta > 2.0 * radius) break;
      conv_sum += kernel.SelfConvolution(delta / bandwidth);
      if (delta <= radius) kernel_sum += kernel.Evaluate(delta / bandwidth);
    }
  }
  const double nn = static_cast<double>(n);
  const double integral_f2 =
      (nn * kernel.Roughness() + 2.0 * conv_sum) / (nn * nn * bandwidth);
  const double leave_one_out = 2.0 * (2.0 * kernel_sum) / (nn * (nn - 1.0) * bandwidth);
  return integral_f2 - leave_one_out;
}

double LeastSquaresCvBandwidth(const Kernel& kernel, std::span<const double> data,
                               double lo_factor, double hi_factor, int grid_points) {
  WDE_CHECK_GE(data.size(), 4u);
  WDE_CHECK(lo_factor > 0.0 && hi_factor > lo_factor);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double pilot = RuleOfThumbBandwidthSorted(sorted);
  const double log_lo = std::log(lo_factor * pilot);
  const double log_hi = std::log(hi_factor * pilot);
  const double best_log = numerics::GridThenGoldenMinimize(
      [&](double lh) {
        return LeastSquaresCvCriterion(kernel, sorted, std::exp(lh));
      },
      log_lo, log_hi, grid_points, 1e-4);
  return std::exp(best_log);
}

}  // namespace kernel
}  // namespace wde
