#include "kernel/kde_tree.hpp"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <limits>
#include <type_traits>

#include "util/check.hpp"

namespace wde {
namespace kernel {

KdeEvalTree::KdeEvalTree(std::span<const double> sorted) {
  WDE_CHECK(!sorted.empty(), "kd-tree requires samples");
  WDE_CHECK_LE(sorted.size(),
               static_cast<size_t>(std::numeric_limits<uint32_t>::max()),
               "kd-tree index type is 32-bit");
  const auto n = static_cast<uint32_t>(sorted.size());
  // Build into a growable scratch vector (the recursion appends child pairs),
  // then pack the finished node array into one aligned arena column.
  std::vector<Node> nodes;
  nodes.reserve(2 * (static_cast<size_t>(n) / kLeafSize + 2));
  nodes.resize(1);
  BuildAt(nodes, sorted, 0, 0, n);
  static_assert(std::is_trivially_copyable_v<Node>,
                "nodes are memcpy'd into the arena column");
  const memory::ColumnSpec specs[] = {
      {memory::ColumnKind::kU8, nodes.size() * sizeof(Node)}};
  storage_ = memory::Arena::Create(specs);
  std::memcpy(storage_.MutableU8(0).data(), nodes.data(),
              nodes.size() * sizeof(Node));
  nodes_ = std::span<const Node>(
      reinterpret_cast<const Node*>(storage_.U8(0).data()), nodes.size());
}

void KdeEvalTree::BuildAt(std::vector<Node>& nodes,
                          std::span<const double> sorted, uint32_t idx,
                          uint32_t begin, uint32_t end) {
  Node node{begin, end, 0, sorted[begin], sorted[end - 1]};
  if (end - begin > kLeafSize) {
    // Children are allocated adjacently (right = left + 1) so the node only
    // stores one child index; median-by-count split keeps the tree balanced
    // even for heavily skewed or duplicate-laden data.
    const auto left = static_cast<uint32_t>(nodes.size());
    node.left = left;
    nodes.resize(nodes.size() + 2);
    nodes[idx] = node;
    const uint32_t mid = begin + (end - begin) / 2;
    BuildAt(nodes, sorted, left, begin, mid);
    BuildAt(nodes, sorted, left + 1, mid, end);
  } else {
    nodes[idx] = node;
  }
}

// --- Density ---------------------------------------------------------------

struct KdeEvalTree::DensityState {
  const Kernel& kernel;
  double bandwidth;
  double x;
  double window_lo;  // x - R·h: samples below never enter the linear window
  double window_hi;  // x + R·h
  double tolerance;
  double acc = 0.0;
};

void KdeEvalTree::DensityNode(const Node& node, std::span<const double> sorted,
                              DensityState& st) const {
  // Exact prune: the node is entirely outside the kernel window. The
  // comparisons mirror the per-sample window predicate below, so tolerance-0
  // traversal visits exactly the samples of the linear windowed pass.
  if (node.xmax < st.window_lo || node.xmin > st.window_hi) return;
  const bool contained =
      st.window_lo <= node.xmin && node.xmax <= st.window_hi;
  if (st.tolerance > 0.0 && contained && !node.leaf()) {
    // Bounded collapse: distances from x to the node's box span
    // [dmin, dmax]; a kernel non-increasing in |u| then brackets every
    // per-sample value in [K(dmax/h), K(dmin/h)]. Midpoint substitution is
    // certified once the bracket is narrower than 2·tol·h (see header).
    const double dmin =
        std::max(0.0, std::max(node.xmin - st.x, st.x - node.xmax));
    const double dmax = std::max(st.x - node.xmin, node.xmax - st.x);
    const double k_hi = st.kernel.Evaluate(dmin / st.bandwidth);
    const double k_lo = st.kernel.Evaluate(dmax / st.bandwidth);
    if (k_hi - k_lo <= 2.0 * st.tolerance * st.bandwidth) {
      st.acc += static_cast<double>(node.count()) * (0.5 * (k_lo + k_hi));
      return;
    }
  }
  if (node.leaf()) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      const double xi = sorted[i];
      if (xi >= st.window_lo && xi <= st.window_hi) {
        st.acc += st.kernel.Evaluate((st.x - xi) / st.bandwidth);
      }
    }
    return;
  }
  DensityNode(nodes_[node.left], sorted, st);
  DensityNode(nodes_[node.left + 1], sorted, st);
}

double KdeEvalTree::DensitySum(std::span<const double> sorted,
                               const Kernel& kernel, double bandwidth, double x,
                               double tolerance) const {
  WDE_CHECK_EQ(sorted.size(), sample_size(), "buffer/tree size mismatch");
  const double radius = kernel.support_radius() * bandwidth;
  DensityState st{kernel, bandwidth, x, x - radius, x + radius, tolerance};
  DensityNode(nodes_[0], sorted, st);
  return st.acc;
}

// --- CDF -------------------------------------------------------------------

struct KdeEvalTree::CdfState {
  const Kernel& kernel;
  double bandwidth;
  double x;
  double radius;  // unscaled support radius R, as in the Cdf saturation tests
  double tolerance;
  uint64_t ones = 0;     // samples with u >= R: Cdf exactly 1, counted as ints
  double acc = 0.0;      // running sum once the first non-saturated term lands
  bool started = false;  // acc seeded from `ones` yet?
};

void KdeEvalTree::CdfNode(const Node& node, std::span<const double> sorted,
                          CdfState& st) const {
  // Exact saturation prunes. u = (x - xi)/h is non-increasing along the
  // sorted buffer, so testing the node's extreme sample settles the whole
  // subtree with the very comparisons Kernel::Cdf branches on.
  if ((st.x - node.xmax) / st.bandwidth >= st.radius) {
    // Whole node saturates at exactly 1.0. In exact mode this is always
    // reached before any window term (saturation is a prefix property), so
    // the integer count keeps the bitwise contract; after a bounded
    // collapse, adding the exact count is still exact.
    if (!st.started) {
      st.ones += node.count();
    } else {
      st.acc += static_cast<double>(node.count());
    }
    return;
  }
  if ((st.x - node.xmin) / st.bandwidth <= -st.radius) return;  // all exactly 0
  if (st.tolerance > 0.0 && !node.leaf()) {
    // Bounded collapse: the kernel CDF is non-decreasing, so per-sample
    // values lie in [Cdf((x-xmax)/h), Cdf((x-xmin)/h)] (see header).
    const double c_lo = st.kernel.Cdf((st.x - node.xmax) / st.bandwidth);
    const double c_hi = st.kernel.Cdf((st.x - node.xmin) / st.bandwidth);
    if (c_hi - c_lo <= 2.0 * st.tolerance) {
      if (!st.started) {
        st.acc = static_cast<double>(st.ones);
        st.started = true;
      }
      st.acc += static_cast<double>(node.count()) * (0.5 * (c_lo + c_hi));
      return;
    }
  }
  if (node.leaf()) {
    for (uint32_t i = node.begin; i < node.end; ++i) {
      const double u = (st.x - sorted[i]) / st.bandwidth;
      if (u >= st.radius) {
        if (!st.started) {
          ++st.ones;
        } else {
          st.acc += 1.0;
        }
      } else if (u <= -st.radius) {
        return;  // u only decreases from here; every remaining term is 0.0
      } else {
        if (!st.started) {
          st.acc = static_cast<double>(st.ones);
          st.started = true;
        }
        st.acc += st.kernel.Cdf(u);
      }
    }
    return;
  }
  CdfNode(nodes_[node.left], sorted, st);
  CdfNode(nodes_[node.left + 1], sorted, st);
}

double KdeEvalTree::CdfSum(std::span<const double> sorted, const Kernel& kernel,
                           double bandwidth, double x, double tolerance) const {
  WDE_CHECK_EQ(sorted.size(), sample_size(), "buffer/tree size mismatch");
  CdfState st{kernel, bandwidth, x, kernel.support_radius(), tolerance};
  CdfNode(nodes_[0], sorted, st);
  return st.started ? st.acc : static_cast<double>(st.ones);
}

}  // namespace kernel
}  // namespace wde
