#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/check.hpp"

namespace wde {
namespace parallel {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 0);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Outstanding tasks after stop are dropped only if nobody waits on them;
  // ParallelFor callers always block until their bodies complete, so the
  // queue can only hold already-finished helper stubs here.
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    WDE_CHECK(!stop_, "Submit on a stopping ThreadPool");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor region. Helpers and the caller claim
/// indices from `next`; the caller returns once `done` reaches `count`. The
/// body lives in the state (not borrowed from the caller's frame) because a
/// queued helper stub can be popped after the region already completed.
/// `active` counts helpers currently inside the claim loop: the caller's
/// exception path waits on it, because bodies typically capture the caller's
/// frame by reference and helpers must leave the body before it unwinds.
struct ForState {
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::atomic<int> active{0};  // helpers inside DrainIndices
  int count = 0;
  std::function<void(int)> body;
  std::mutex mu;
  std::condition_variable all_done;
};

void DrainIndices(const std::shared_ptr<ForState>& state) {
  for (int i = state->next.fetch_add(1); i < state->count;
       i = state->next.fetch_add(1)) {
    state->body(i);
    if (state->done.fetch_add(1) + 1 == state->count) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->all_done.notify_all();
    }
  }
}

}  // namespace

void ThreadPool::ParallelFor(int count, int max_workers,
                             const std::function<void(int)>& body) {
  WDE_CHECK_GE(count, 0);
  if (count == 0) return;
  const int helpers = std::min({max_workers - 1, thread_count(), count - 1});
  if (helpers <= 0) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->count = count;
  state->body = body;
  for (int h = 0; h < helpers; ++h) {
    Submit([state]() {
      state->active.fetch_add(1);
      DrainIndices(state);
      std::lock_guard<std::mutex> lock(state->mu);
      state->active.fetch_sub(1);
      state->all_done.notify_all();
    });
  }
  // The library itself never throws, but a body still can (std::bad_alloc,
  // user callbacks). A body that throws on a *helper* terminates the process
  // (exception escaping a pool thread), same as the old spawn-per-call
  // implementation; a body that throws on the caller must not let the
  // caller's frame — typically captured by reference in `body` — unwind
  // while helpers are still executing bodies, so stop further claims and
  // wait for helpers to leave the loop before rethrowing.
  try {
    DrainIndices(state);
  } catch (...) {
    state->next.store(count);
    std::unique_lock<std::mutex> lock(state->mu);
    state->all_done.wait(lock,
                         [&state]() { return state->active.load() == 0; });
    throw;
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->all_done.wait(lock, [&state]() {
    return state->done.load() == state->count;
  });
}

ThreadPool& ThreadPool::Shared() {
  // hardware_concurrency() may legitimately return 0 (unknown); a zero-worker
  // shared pool would silently serialize every parallel path, so keep at
  // least one worker.
  static ThreadPool pool(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace parallel
}  // namespace wde
