/// \file parallel/thread_pool.hpp
/// Entry header of the `parallel` module: the shared execution substrate for
/// every parallel code path in the library (Monte-Carlo replication, sharded
/// selectivity ingest, bench drivers). One persistent `ThreadPool` replaces
/// the thread-spawn-per-call pattern, so repeated parallel regions pay thread
/// creation once per process instead of once per call. Invariants: the
/// calling thread always participates in `ParallelFor`, so forward progress
/// never depends on a worker being free (zero-worker pools degrade to serial,
/// and nested ParallelFor calls cannot deadlock); work distribution affects
/// scheduling only — any computation whose per-index bodies write disjoint
/// state is bit-identical for every pool size and `max_workers` value.
#ifndef WDE_PARALLEL_THREAD_POOL_HPP_
#define WDE_PARALLEL_THREAD_POOL_HPP_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wde {
namespace parallel {

/// A fixed-size pool of worker threads draining a FIFO work queue
/// (std::thread + mutex/condition_variable; no spinning). Construction
/// spawns the workers; destruction drains outstanding tasks and joins.
///
/// Submitting from multiple threads is safe. The pool never runs a task on
/// a thread that is destroying the pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped at 0; a zero-worker pool is valid and
  /// makes Submit run inline and ParallelFor serial).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide shared executor, sized to the hardware concurrency.
  /// Harness replication, sharded selectivity ingest and bench drivers all
  /// default to this instance so the process runs one set of workers total.
  static ThreadPool& Shared();

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Runs inline when the pool has no workers.
  void Submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, count) and blocks until all are done.
  /// At most `max_workers` threads execute bodies concurrently (the caller
  /// counts as one); max_workers <= 1 runs serially on the caller. Indices
  /// are claimed from a shared atomic counter, so the assignment of index to
  /// thread is scheduling-dependent — bodies must write disjoint state, and
  /// any such computation is bit-identical for every thread count.
  void ParallelFor(int count, int max_workers, const std::function<void(int)>& body);

  /// ParallelFor with the pool's full width.
  void ParallelFor(int count, const std::function<void(int)>& body) {
    ParallelFor(count, thread_count() + 1, body);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace parallel
}  // namespace wde

#endif  // WDE_PARALLEL_THREAD_POOL_HPP_
