#include "multidim/grid2d.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/simd.hpp"
#include "util/check.hpp"

namespace wde {
namespace multidim {

size_t CellIndex1d(double x, double lo, double hi, size_t g) {
  x = std::clamp(x, lo, hi);
  const double t = (x - lo) / (hi - lo) * static_cast<double>(g);
  const auto cell = std::clamp(static_cast<long>(t), 0L, static_cast<long>(g) - 1);
  return static_cast<size_t>(cell);
}

double CellSpace1d(double x, double lo, double hi, size_t g) {
  // Clamp in domain units first: ±inf lands exactly on an edge without ever
  // entering the scale arithmetic (inf - inf would poison it).
  x = std::clamp(x, lo, hi);
  const double t = (x - lo) / (hi - lo) * static_cast<double>(g);
  return std::clamp(t, 0.0, static_cast<double>(g));
}

void InclusivePrefix2d(std::span<const double> counts, std::span<double> prefix,
                       size_t g) {
  WDE_CHECK_EQ(counts.size(), g * g);
  WDE_CHECK_EQ(prefix.size(), g * g);
  for (size_t i = 0; i < g; ++i) {
    const double* row = counts.data() + i * g;
    double* out = prefix.data() + i * g;
    // Left-to-right running sum along the row (one sequential chain).
    double running = 0.0;
    for (size_t j = 0; j < g; ++j) {
      running += row[j];
      out[j] = running;
    }
    if (i == 0) continue;
    // Fold in the previous row's prefix elementwise.
    const double* above = prefix.data() + (i - 1) * g;
    WDE_SIMD_LOOP
    for (size_t j = 0; j < g; ++j) out[j] += above[j];
  }
}

namespace {

/// Lattice-corner CDF C(i, j) for i, j in [0, g]: zero on the low edges,
/// prefix[(i-1)·g + (j-1)] elsewhere.
double CornerCdf(std::span<const double> prefix, size_t g, size_t i, size_t j) {
  if (i == 0 || j == 0) return 0.0;
  return prefix[(i - 1) * g + (j - 1)];
}

}  // namespace

double BilinearCountCdf(std::span<const double> prefix, size_t g, double u,
                        double v) {
  const size_t i0 = std::min(static_cast<size_t>(u), g - 1);
  const size_t j0 = std::min(static_cast<size_t>(v), g - 1);
  const double tu = u - static_cast<double>(i0);
  const double tv = v - static_cast<double>(j0);
  const double c00 = CornerCdf(prefix, g, i0, j0);
  const double c10 = CornerCdf(prefix, g, i0 + 1, j0);
  const double c01 = CornerCdf(prefix, g, i0, j0 + 1);
  const double c11 = CornerCdf(prefix, g, i0 + 1, j0 + 1);
  return (1.0 - tu) * ((1.0 - tv) * c00 + tv * c01) +
         tu * ((1.0 - tv) * c10 + tv * c11);
}

double RectCount(std::span<const double> prefix, size_t g, double lo0,
                 double hi0, double lo1, double hi1, double dlo0, double dhi0,
                 double dlo1, double dhi1) {
  const double ulo = CellSpace1d(lo0, dlo0, dhi0, g);
  const double uhi = CellSpace1d(hi0, dlo0, dhi0, g);
  const double vlo = CellSpace1d(lo1, dlo1, dhi1, g);
  const double vhi = CellSpace1d(hi1, dlo1, dhi1, g);
  const double mass = BilinearCountCdf(prefix, g, uhi, vhi) -
                      BilinearCountCdf(prefix, g, ulo, vhi) -
                      BilinearCountCdf(prefix, g, uhi, vlo) +
                      BilinearCountCdf(prefix, g, ulo, vlo);
  return std::max(mass, 0.0);
}

}  // namespace multidim
}  // namespace wde
