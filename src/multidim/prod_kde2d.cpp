#include "multidim/prod_kde2d.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "multidim/grid2d.hpp"
#include "numerics/simd.hpp"
#include "util/check.hpp"

namespace wde {
namespace multidim {
namespace {

/// Zip/unzip through a pair buffer: pair-keyed sorts and merges then reduce
/// to the standard library algorithms, and equal pairs are identical values,
/// so the resulting coordinate arrays are a function of the multiset alone.
std::vector<std::pair<double, double>> ZipPoints(std::span<const double> xs,
                                                 std::span<const double> ys) {
  std::vector<std::pair<double, double>> pairs(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) pairs[i] = {xs[i], ys[i]};
  return pairs;
}

void UnzipPoints(std::span<const std::pair<double, double>> pairs,
                 std::span<double> xs, std::span<double> ys) {
  for (size_t i = 0; i < pairs.size(); ++i) {
    xs[i] = pairs[i].first;
    ys[i] = pairs[i].second;
  }
}

/// out[j] = Kcdf((hi − coords[j]) / (h·λ_j)) − Kcdf((lo − coords[j]) / (h·λ_j))
/// with infinite endpoints folded to the exact saturation constants.
void AxisFactors(const kernel::Kernel& k, std::span<const double> coords,
                 std::span<const double> lambdas, double h, double lo,
                 double hi, std::vector<double>& arg, std::vector<double>& tmp,
                 std::span<double> out) {
  const size_t m = coords.size();
  if (std::isfinite(hi)) {
    WDE_SIMD_LOOP
    for (size_t j = 0; j < m; ++j) arg[j] = (hi - coords[j]) / (h * lambdas[j]);
    k.CdfMany(std::span<const double>(arg.data(), m), out);
  } else {
    std::fill(out.begin(), out.end(), 1.0);
  }
  if (std::isfinite(lo)) {
    WDE_SIMD_LOOP
    for (size_t j = 0; j < m; ++j) arg[j] = (lo - coords[j]) / (h * lambdas[j]);
    k.CdfMany(std::span<const double>(arg.data(), m),
              std::span<double>(tmp.data(), m));
    WDE_SIMD_LOOP
    for (size_t j = 0; j < m; ++j) out[j] -= tmp[j];
  }
}

}  // namespace

void SortPointsLex(std::span<double> xs, std::span<double> ys) {
  WDE_CHECK_EQ(xs.size(), ys.size());
  auto pairs = ZipPoints(xs, ys);
  std::sort(pairs.begin(), pairs.end());
  UnzipPoints(pairs, xs, ys);
}

void MergeSortedTailLex(std::span<double> xs, std::span<double> ys,
                        size_t split) {
  WDE_CHECK_EQ(xs.size(), ys.size());
  WDE_CHECK_LE(split, xs.size());
  auto pairs = ZipPoints(xs, ys);
  const auto mid = pairs.begin() + static_cast<ptrdiff_t>(split);
  std::sort(mid, pairs.end());
  std::inplace_merge(pairs.begin(), mid, pairs.end());
  UnzipPoints(pairs, xs, ys);
}

bool IsLexSorted(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) return false;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i])) return false;
    if (i == 0) continue;
    if (xs[i] < xs[i - 1]) return false;
    if (xs[i] == xs[i - 1] && ys[i] < ys[i - 1]) return false;
  }
  return true;
}

double AdaptiveLambdas(std::span<const double> xs, std::span<const double> ys,
                       double lo0, double hi0, double lo1, double hi1,
                       double alpha, int pilot_log2,
                       std::span<double> lambdas) {
  WDE_CHECK_EQ(xs.size(), lambdas.size());
  WDE_CHECK_EQ(ys.size(), lambdas.size());
  const size_t n = xs.size();
  if (n == 0) return 1.0;
  if (alpha == 0.0) {
    std::fill(lambdas.begin(), lambdas.end(), 1.0);
    return 1.0;
  }
  const size_t g = size_t{1} << pilot_log2;
  std::vector<double> cells(g * g, 0.0);
  std::vector<size_t> cell_of(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t cell = CellIndex1d(xs[i], lo0, hi0, g) * g +
                        CellIndex1d(ys[i], lo1, hi1, g);
    cell_of[i] = cell;
    cells[cell] += 1.0;
  }
  // Geometric mean of the per-point pilot masses, accumulated in index
  // order (one sequential chain — deterministic in the point sequence).
  double log_sum = 0.0;
  for (size_t i = 0; i < n; ++i) log_sum += std::log(cells[cell_of[i]]);
  const double geo_mean = std::exp(log_sum / static_cast<double>(n));
  double lambda_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double lambda = std::clamp(
        std::pow(cells[cell_of[i]] / geo_mean, -alpha), 0.25, 4.0);
    lambdas[i] = lambda;
    lambda_max = std::max(lambda_max, lambda);
  }
  return lambda_max;
}

double ProdKde2dRectSum(const kernel::Kernel& k, std::span<const double> xs,
                        std::span<const double> ys,
                        std::span<const double> lambdas, double hx, double hy,
                        double lambda_max, double lo0, double hi0, double lo1,
                        double hi1, ProdKde2dScratch& scratch) {
  const size_t n = xs.size();
  if (n == 0) return 0.0;
  // The x-window: outside it every x factor is exactly zero (saturated CDF
  // difference), so skipping those points changes nothing, bitwise.
  const double reach = k.support_radius() * hx * lambda_max;
  size_t begin = 0;
  size_t end = n;
  if (std::isfinite(lo0)) {
    begin = static_cast<size_t>(
        std::lower_bound(xs.begin(), xs.end(), lo0 - reach) - xs.begin());
  }
  if (std::isfinite(hi0)) {
    end = static_cast<size_t>(
        std::upper_bound(xs.begin(), xs.end(), hi0 + reach) - xs.begin());
  }
  if (begin >= end) return 0.0;
  const size_t m = end - begin;
  scratch.arg.resize(m);
  scratch.tmp.resize(m);
  scratch.fx.resize(m);
  scratch.fy.resize(m);
  AxisFactors(k, xs.subspan(begin, m), lambdas.subspan(begin, m), hx, lo0, hi0,
              scratch.arg, scratch.tmp,
              std::span<double>(scratch.fx.data(), m));
  AxisFactors(k, ys.subspan(begin, m), lambdas.subspan(begin, m), hy, lo1, hi1,
              scratch.arg, scratch.tmp,
              std::span<double>(scratch.fy.data(), m));
  // One sequential chain over the window — fixed association, so batch and
  // scalar query paths reusing this routine agree bit-for-bit.
  double sum = 0.0;
  for (size_t j = 0; j < m; ++j) sum += scratch.fx[j] * scratch.fy[j];
  return sum;
}

}  // namespace multidim
}  // namespace wde
