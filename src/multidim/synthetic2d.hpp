/// \file multidim/synthetic2d.hpp
/// Correlated 2-D synthetic data for the multi-dimensional harness and
/// benches: covariant Gaussian mixtures (each component carries a
/// correlation, realized through stats::Rng::GaussianPair) and an
/// "anti-product" distribution whose marginals are near-uniform while the
/// joint concentrates on the two diagonals — the adversarial case for any
/// independence-assuming (product-of-marginals) estimator, which the 2-D
/// grid and the adaptive product KDE must still capture. All draws flow
/// through the deterministic stats::Rng, so data sets reproduce bit-for-bit
/// from (seed, parameters).
///
/// Output convention: observations are appended interleaved —
/// x0, y0, x1, y1, ... — exactly the stream layout the dims() == 2
/// estimators ingest, so a generated buffer feeds InsertBatch directly.
#ifndef WDE_MULTIDIM_SYNTHETIC2D_HPP_
#define WDE_MULTIDIM_SYNTHETIC2D_HPP_

#include <cstddef>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace wde {
namespace multidim {

/// One mixture component: N(mean, Σ) with
///   Σ = [sx²      ρ·sx·sy]
///       [ρ·sx·sy  sy²    ]
/// realized as mean + diag(sx, sy) · L·z where L is the Cholesky factor of
/// the correlation matrix (GaussianPair) — full covariance without a matrix
/// library. Weights need not sum to 1; they are normalized at sampling.
struct GaussianComponent2d {
  double weight = 1.0;
  double mean_x = 0.5;
  double mean_y = 0.5;
  double stddev_x = 0.1;
  double stddev_y = 0.1;
  /// Correlation ρ ∈ [-1, 1].
  double rho = 0.0;
};

/// Appends n observations (2n interleaved values) drawn from the mixture.
/// Component choice and the Gaussian pair both come from `rng` in a fixed
/// per-observation draw order, so the stream is deterministic in (rng state,
/// components, n).
void SampleGaussianMixture2d(stats::Rng& rng,
                             std::span<const GaussianComponent2d> components,
                             size_t n, std::vector<double>* out);

/// Appends n observations (2n interleaved values) from the anti-product
/// distribution on [0, 1]²: x ~ U[0, 1); with probability 1/2,
/// y = x + N(0, noise), else y = (1 − x) + N(0, noise); y is reflected back
/// into [0, 1]. Both marginals are near-uniform, so the product of marginals
/// is near-flat while the true joint mass rides the two diagonals —
/// rectangle queries off the diagonals expose any estimator that assumes
/// independence.
void SampleAntiProduct2d(stats::Rng& rng, size_t n, double noise,
                         std::vector<double>* out);

}  // namespace multidim
}  // namespace wde

#endif  // WDE_MULTIDIM_SYNTHETIC2D_HPP_
