/// \file multidim/prod_kde2d.hpp
/// Pure math behind the "kde2d-prod" estimator: a product-kernel 2-D KDE
/// with per-dimension bandwidths and per-point adaptive bandwidth factors,
///
///   f̂(x, y) = (1/n) Σ_i K((x−x_i)/(hx·λ_i)) · K((y−y_i)/(hy·λ_i))
///                       / (hx·λ_i · hy·λ_i),
///
/// in the Mazeika/Böhlen/Trivellato product/adaptive style: the two
/// bandwidths come from the paper's per-dimension rule of thumb (optionally
/// refined by least-squares CV), and λ_i = (pilot_i / ḡ)^(−α) sharpens the
/// kernel where a binned pilot density says the data is dense. Rectangle
/// masses are products of per-axis kernel-CDF differences, summed over an
/// x-window binary-searched out of the lex-sorted sample — the compact
/// Epanechnikov support makes the pruning bit-exact, not approximate.
///
/// No estimator/IO dependencies — the selectivity adapter owns storage,
/// refit pacing and snapshots; these kernels are deterministic functions of
/// their spans, so fitted state restored from a snapshot answers
/// bit-identically to the live fit that produced it.
#ifndef WDE_MULTIDIM_PROD_KDE2D_HPP_
#define WDE_MULTIDIM_PROD_KDE2D_HPP_

#include <cstddef>
#include <span>
#include <vector>

#include "kernel/kernels.hpp"

namespace wde {
namespace multidim {

/// Sorts the parallel coordinate arrays lexicographically by (x, y).
/// Equal (x, y) pairs are indistinguishable, so the sorted sequence — and
/// everything derived from it — is a function of the point multiset alone.
void SortPointsLex(std::span<double> xs, std::span<double> ys);

/// Restores lex order after appending a tail at `split` to arrays whose
/// prefix [0, split) is already lex-sorted: sort the tail, one stable merge.
/// O(Δ log Δ + n) against a full sort's O(n log n), identical sequence —
/// the incremental-refit counterpart of SortPointsLex (refit_equivalence).
void MergeSortedTailLex(std::span<double> xs, std::span<double> ys,
                        size_t split);

/// True when (xs, ys) is lex-sorted by (x, y) with every coordinate finite —
/// the validation fast-snapshot loads run before adopting fitted columns.
bool IsLexSorted(std::span<const double> xs, std::span<const double> ys);

/// Per-point adaptive bandwidth factors from a binned pilot density: the
/// points are binned on a 2^pilot_log2 × 2^pilot_log2 grid over the domain,
/// the pilot mass at point i is its cell's count (always >= 1 — the point
/// itself), ḡ = exp(mean_i log pilot_i) is the geometric mean, and
///   λ_i = clamp((pilot_i / ḡ)^(−α), 1/4, 4)
/// (Abramson-style with exponent scaled by α ∈ [0, 1]; α = 0 short-circuits
/// to λ ≡ 1). Normalizing constants cancel inside the ratio, so raw cell
/// counts stand in for the pilot density. Returns max_i λ_i (the window
/// inflation the rectangle evaluation needs); 1.0 for an empty sample.
/// Deterministic in the point sequence.
double AdaptiveLambdas(std::span<const double> xs, std::span<const double> ys,
                       double lo0, double hi0, double lo1, double hi1,
                       double alpha, int pilot_log2,
                       std::span<double> lambdas);

/// Scratch buffers for ProdKde2dRectSum, reused across calls (contents are
/// dead between calls). One instance per concurrent caller: the evaluation
/// itself is const over the fitted spans, so distinct scratches make
/// concurrent rectangle queries over one fitted state safe.
struct ProdKde2dScratch {
  std::vector<double> arg;
  std::vector<double> tmp;
  std::vector<double> fx;
  std::vector<double> fy;
};

/// Un-normalized product-kernel rectangle mass over the fitted points
/// (the caller divides by n):
///
///   Σ_i [Kcdf((hi0−x_i)/(hx λ_i)) − Kcdf((lo0−x_i)/(hx λ_i))] ·
///       [Kcdf((hi1−y_i)/(hy λ_i)) − Kcdf((lo1−y_i)/(hy λ_i))]
///
/// `xs` must be ascending (lex-sorted): a point with x_i outside
/// [lo0 − R·hx·λmax, hi0 + R·hx·λmax] has an exactly-zero x factor (the
/// kernel CDF saturates to exactly 0/1 outside its support radius R), so
/// the sum runs over the binary-searched x-window only and the pruning is
/// bit-exact. ±inf endpoints become the exact CDF limits 0/1 and are never
/// fed to CdfMany; bounds must be non-NaN with lo <= hi per axis (the
/// taxonomy normalization guarantees both). The per-axis CDF arguments are
/// computed in SIMD-annotated elementwise loops and the final products
/// accumulate in one sequential chain, so the result is a deterministic
/// function of (fitted spans, bandwidths, rectangle) alone.
double ProdKde2dRectSum(const kernel::Kernel& k, std::span<const double> xs,
                        std::span<const double> ys,
                        std::span<const double> lambdas, double hx, double hy,
                        double lambda_max, double lo0, double hi0, double lo1,
                        double hi1, ProdKde2dScratch& scratch);

}  // namespace multidim
}  // namespace wde

#endif  // WDE_MULTIDIM_PROD_KDE2D_HPP_
