#include "multidim/synthetic2d.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace multidim {
namespace {

/// Reflects t into [0, 1] (one bounce per excursion; inputs stay within one
/// period for any plausible noise scale).
double Reflect01(double t) {
  if (t < 0.0) t = -t;
  if (t > 1.0) t = 2.0 - t;
  // A second clamp catches the (noise > 1) double-excursion corner.
  if (t < 0.0) t = 0.0;
  if (t > 1.0) t = 1.0;
  return t;
}

}  // namespace

void SampleGaussianMixture2d(stats::Rng& rng,
                             std::span<const GaussianComponent2d> components,
                             size_t n, std::vector<double>* out) {
  WDE_CHECK(!components.empty(), "mixture needs at least one component");
  double total_weight = 0.0;
  for (const GaussianComponent2d& c : components) {
    WDE_CHECK(c.weight >= 0.0, "component weights must be nonnegative");
    WDE_CHECK(c.rho >= -1.0 && c.rho <= 1.0, "correlation must be in [-1, 1]");
    total_weight += c.weight;
  }
  WDE_CHECK_GT(total_weight, 0.0);
  out->reserve(out->size() + 2 * n);
  for (size_t i = 0; i < n; ++i) {
    // Component draw, then the correlated pair: two fixed draws per
    // observation, so the stream is reproducible position by position.
    double pick = rng.UniformDouble() * total_weight;
    size_t chosen = components.size() - 1;
    for (size_t c = 0; c < components.size(); ++c) {
      pick -= components[c].weight;
      if (pick < 0.0) {
        chosen = c;
        break;
      }
    }
    const GaussianComponent2d& comp = components[chosen];
    double z0 = 0.0;
    double z1 = 0.0;
    rng.GaussianPair(comp.rho, &z0, &z1);
    out->push_back(comp.mean_x + comp.stddev_x * z0);
    out->push_back(comp.mean_y + comp.stddev_y * z1);
  }
}

void SampleAntiProduct2d(stats::Rng& rng, size_t n, double noise,
                         std::vector<double>* out) {
  WDE_CHECK(noise >= 0.0, "noise must be nonnegative");
  out->reserve(out->size() + 2 * n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformDouble();
    const bool rising = rng.Bernoulli(0.5);
    const double y = (rising ? x : 1.0 - x) + rng.Gaussian(0.0, noise);
    out->push_back(x);
    out->push_back(Reflect01(y));
  }
}

}  // namespace multidim
}  // namespace wde
