/// \file multidim/grid2d.hpp
/// Pure 2-D lattice math behind the "grid2d" selectivity estimator: cell
/// indexing over a fixed g×g grid, the inclusive 2-D prefix-sum
/// (summed-area table) rebuild, and the bilinear continuous CDF that turns
/// the table into O(1) rectangle masses. No estimator/IO dependencies —
/// the selectivity adapter owns storage, staleness and snapshots; these
/// kernels are deterministic functions of their spans.
#ifndef WDE_MULTIDIM_GRID2D_HPP_
#define WDE_MULTIDIM_GRID2D_HPP_

#include <cstddef>
#include <span>

namespace wde {
namespace multidim {

/// Cell index of `x` on one axis with `g` cells over [lo, hi]: linear map
/// clamped to [0, g-1] (the last cell is closed, like the 1-D equi-width
/// histogram's bucket rule). Requires finite x, lo < hi, g >= 1.
size_t CellIndex1d(double x, double lo, double hi, size_t g);

/// Cell-space coordinate of `x` on one axis: ((x - lo) / (hi - lo)) · g,
/// clamped to [0, g]. ±inf clamps exactly to the matching edge (0 or g);
/// the caller screens NaN (the taxonomy's AnswersZero rule does this before
/// any estimator runs).
double CellSpace1d(double x, double lo, double hi, size_t g);

/// Inclusive 2-D prefix sums (summed-area table) over a row-major g×g count
/// grid: prefix[i·g + j] = Σ counts[a·g + b] for a <= i, b <= j. Both spans
/// must hold exactly g·g elements and may not alias.
///
/// Association is fixed — each row accumulates left-to-right in one
/// sequential chain, then adds the previous row's prefix elementwise
/// (SIMD-annotated; elementwise, so no within-element re-association) — and
/// for integer-valued counts whose partial sums stay below 2^53 every
/// partial sum is exact, so the table is bit-identical however the counts
/// were accumulated (sequential ingest, shard merges, snapshot restore).
void InclusivePrefix2d(std::span<const double> counts, std::span<double> prefix,
                       size_t g);

/// Continuous summed-area CDF, in counts, at cell-space point (u, v) ∈
/// [0, g]²: bilinear interpolation of the lattice-corner values
/// C(i, j) = prefix[(i-1)·g + (j-1)] (zero on the i = 0 / j = 0 edges) —
/// i.e. each cell's count spreads uniformly over its cell. Monotone in both
/// arguments, so inclusion-exclusion rectangle masses are nonnegative up to
/// rounding (callers clamp).
double BilinearCountCdf(std::span<const double> prefix, size_t g, double u,
                        double v);

/// Rectangle count mass of [lo0, hi0] × [lo1, hi1] (domain units, caller-
/// normalized lo <= hi per axis, ±inf legal, NaN screened) over the prefix
/// table: four BilinearCountCdf corners combined by inclusion-exclusion and
/// clamped to >= 0. Axis 0 spans [dlo0, dhi0], axis 1 [dlo1, dhi1].
double RectCount(std::span<const double> prefix, size_t g, double lo0,
                 double hi0, double lo1, double hi1, double dlo0, double dhi0,
                 double dlo1, double dhi1);

}  // namespace multidim
}  // namespace wde

#endif  // WDE_MULTIDIM_GRID2D_HPP_
